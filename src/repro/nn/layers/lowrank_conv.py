"""Low-rank factorized 2-D convolution.

A convolution with ``F`` filters over a receptive field of size
``M = C·kh·kw`` owns a weight matrix ``W ∈ R^{F×M}``.  Factorizing
``W ≈ U·Vᵀ`` with rank ``K`` turns the layer into a cascade of

1. a convolution with ``K`` "basis" filters (the rows of ``Vᵀ`` reshaped to
   ``K×C×kh×kw``), followed by
2. a ``1×1`` convolution with weight ``U ∈ R^{F×K}`` mixing the basis
   responses into the ``F`` original output channels.

which is exactly what the paper maps onto two crossbar stages.  The
implementation shares the im2col path with :class:`~repro.nn.layers.conv.Conv2D`
so both stages are a single matrix product each.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import RankError, ShapeError
from repro.nn import functional as F
from repro.nn.dtype import as_float
from repro.nn.initializers import get_initializer
from repro.nn.layers.base import Layer
from repro.nn.parameter import Parameter
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import check_positive_int


class LowRankConv2D(Layer):
    """2-D convolution with an explicit rank-``K`` factorization of its kernel."""

    _cache_attrs = ("_cols_cache", "_mid_cache", "_input_shape", "_out_hw")

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rank: Optional[int] = None,
        *,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        weight_init="he_normal",
        name: str = "",
        rng: RngLike = None,
    ):
        super().__init__(name=name or "lowrank_conv2d")
        self.in_channels = check_positive_int(in_channels, "in_channels")
        self.out_channels = check_positive_int(out_channels, "out_channels")
        self.kernel_size = check_positive_int(kernel_size, "kernel_size")
        self.stride = check_positive_int(stride, "stride")
        if padding < 0:
            raise ValueError(f"padding must be >= 0, got {padding}")
        self.padding = int(padding)
        self.use_bias = bool(bias)

        fan_in = self.in_channels * self.kernel_size * self.kernel_size
        max_rank = min(self.out_channels, fan_in)
        if rank is None:
            rank = max_rank
        rank = check_positive_int(rank, "rank")
        if rank > max_rank:
            raise RankError(f"rank {rank} exceeds min(out_channels, fan_in) = {max_rank}")
        self.rank = rank

        rng = as_rng(rng)
        init = get_initializer(weight_init)
        u = init((self.out_channels, self.rank), self.rank, self.out_channels, rng)
        v = init((fan_in, self.rank), fan_in, self.rank, rng)
        self.u = self.add_parameter("u", Parameter(u))
        self.v = self.add_parameter("v", Parameter(v))
        if self.use_bias:
            self.bias: Optional[Parameter] = self.add_parameter(
                "bias", Parameter(np.zeros(self.out_channels))
            )
        else:
            self.bias = None
        self._cols_cache: Optional[np.ndarray] = None
        self._mid_cache: Optional[np.ndarray] = None
        self._input_shape: Optional[Tuple[int, int, int, int]] = None
        self._out_hw: Optional[Tuple[int, int]] = None

    # ------------------------------------------------------------ factories
    @classmethod
    def from_conv(cls, conv, rank: Optional[int] = None, *, name: str = "") -> "LowRankConv2D":
        """Build a factorized copy of a dense :class:`~repro.nn.layers.conv.Conv2D`.

        With ``rank=None`` the copy is numerically exact (full-rank SVD split);
        with a smaller rank it is the optimal Frobenius truncation ("Direct
        LRA").
        """
        weight_matrix = conv.weight_matrix
        max_rank = min(weight_matrix.shape)
        if rank is None:
            rank = max_rank
        if rank > max_rank:
            raise RankError(f"rank {rank} exceeds min(out_channels, fan_in) = {max_rank}")
        layer = cls(
            conv.in_channels,
            conv.out_channels,
            conv.kernel_size,
            rank=rank,
            stride=conv.stride,
            padding=conv.padding,
            bias=conv.bias is not None,
            name=name or f"{conv.name}_lowrank",
        )
        u_mat, s, vt = np.linalg.svd(weight_matrix, full_matrices=False)
        layer.u.data = u_mat[:, :rank] * s[:rank]
        # ascontiguousarray: keep the canonical C layout (see
        # LowRankLinear.from_dense) so products do not depend on whether the
        # factor is a transposed SVD view or a materialized array.
        layer.v.data = np.ascontiguousarray(vt[:rank, :].T)
        if conv.bias is not None:
            layer.bias.data = conv.bias.data.copy()
        return layer

    # ----------------------------------------------------------------- math
    @property
    def fan_in(self) -> int:
        """Flattened receptive-field size ``in_channels · kh · kw``."""
        return self.in_channels * self.kernel_size * self.kernel_size

    def effective_weight(self) -> np.ndarray:
        """Reconstructed dense kernel matrix ``U·Vᵀ`` of shape ``(out_channels, fan_in)``."""
        return self.u.data @ self.v.data.T

    def effective_kernel(self) -> np.ndarray:
        """Reconstructed kernel tensor of shape ``(out, in, kh, kw)``."""
        return self.effective_weight().reshape(
            self.out_channels, self.in_channels, self.kernel_size, self.kernel_size
        )

    def set_factors(self, u: np.ndarray, v: np.ndarray) -> None:
        """Replace the factors (used by rank clipping), updating ``rank``."""
        u = as_float(u)
        v = as_float(v)
        if u.ndim != 2 or v.ndim != 2:
            raise ShapeError("factors must be 2-D")
        if u.shape[0] != self.out_channels:
            raise ShapeError(f"U must have {self.out_channels} rows, got shape {u.shape}")
        if v.shape[0] != self.fan_in:
            raise ShapeError(f"V must have {self.fan_in} rows, got shape {v.shape}")
        if u.shape[1] != v.shape[1]:
            raise ShapeError(f"U and V must share the rank dimension, got {u.shape} and {v.shape}")
        new_rank = u.shape[1]
        if new_rank < 1 or new_rank > min(self.out_channels, self.fan_in):
            raise RankError(f"new rank {new_rank} is out of range for this layer")
        self.u.clear_mask()
        self.v.clear_mask()
        self.u.data = u.copy()
        self.u.grad = np.zeros_like(self.u.data)
        self.v.data = v.copy()
        self.v.grad = np.zeros_like(self.v.data)
        self.rank = new_rank

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_float(x)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ShapeError(
                f"{self.name}: expected input of shape (batch, {self.in_channels}, H, W), "
                f"got {x.shape}"
            )
        cols, out_h, out_w = F.im2col(
            x, self.kernel_size, self.kernel_size, self.stride, self.padding
        )
        mid = cols @ self.v.data  # (N*oh*ow, K): the K basis-filter responses
        if self.training:
            self._cols_cache = cols
            self._input_shape = x.shape
            self._out_hw = (out_h, out_w)
            self._mid_cache = mid
        else:
            self.release_caches()
        out = mid @ self.u.data.T  # (N*oh*ow, out_channels)
        if self.bias is not None:
            out = out + self.bias.data
        n = x.shape[0]
        return out.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cols_cache is None or self._mid_cache is None:
            raise ShapeError(f"{self.name}: backward called before forward")
        n = self._input_shape[0]
        out_h, out_w = self._out_hw
        expected = (n, self.out_channels, out_h, out_w)
        grad_output = as_float(grad_output)
        if grad_output.shape != expected:
            raise ShapeError(
                f"{self.name}: expected grad_output of shape {expected}, got {grad_output.shape}"
            )
        grad_mat = grad_output.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)
        self.u.accumulate_grad(grad_mat.T @ self._mid_cache)
        grad_mid = grad_mat @ self.u.data  # (N*oh*ow, K)
        self.v.accumulate_grad(self._cols_cache.T @ grad_mid)
        if self.bias is not None:
            self.bias.accumulate_grad(grad_mat.sum(axis=0))
        # The V factor transposed to (rank, fan_in) plays the weight-matrix
        # role of the fused input-gradient kernel: grad_cols = grad_mid · Vᵀ.
        grad_input = F.conv_backward_input(
            grad_mid,
            self.v.data.T,
            self._input_shape,
            self.kernel_size,
            self.kernel_size,
            self.stride,
            self.padding,
        )
        self.release_caches()
        return grad_input

    # ------------------------------------------------------------- geometry
    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if len(input_shape) != 3 or input_shape[0] != self.in_channels:
            raise ShapeError(
                f"{self.name}: expected per-sample input shape ({self.in_channels}, H, W), "
                f"got {input_shape}"
            )
        _, h, w = input_shape
        out_h = F.conv_output_size(h, self.kernel_size, self.stride, self.padding)
        out_w = F.conv_output_size(w, self.kernel_size, self.stride, self.padding)
        return (self.out_channels, out_h, out_w)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LowRankConv2D(name={self.name!r}, in={self.in_channels}, out={self.out_channels}, "
            f"k={self.kernel_size}, rank={self.rank})"
        )
