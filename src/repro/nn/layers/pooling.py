"""Spatial pooling layers (max and average)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.functional import conv_output_size, pad_images
from repro.nn.layers.base import Layer
from repro.utils.validation import check_positive_int


class _Pool2D(Layer):
    """Shared geometry/bookkeeping for 2-D pooling layers."""

    def __init__(
        self,
        pool_size: int = 2,
        stride: Optional[int] = None,
        *,
        padding: int = 0,
        name: str = "",
    ):
        super().__init__(name=name or type(self).__name__.lower())
        self.pool_size = check_positive_int(pool_size, "pool_size")
        self.stride = check_positive_int(stride if stride is not None else pool_size, "stride")
        if padding < 0:
            raise ValueError(f"padding must be >= 0, got {padding}")
        self.padding = int(padding)
        self._input_shape: Optional[Tuple[int, int, int, int]] = None
        self._windows: Optional[np.ndarray] = None

    def _extract_windows(self, x: np.ndarray) -> Tuple[np.ndarray, int, int]:
        """Return all pooling windows of shape ``(N, C, out_h, out_w, k*k)``."""
        n, c, h, w = x.shape
        out_h = conv_output_size(h, self.pool_size, self.stride, self.padding)
        out_w = conv_output_size(w, self.pool_size, self.stride, self.padding)
        x_padded = pad_images(x, self.padding)
        windows = np.empty((n, c, out_h, out_w, self.pool_size * self.pool_size), dtype=x.dtype)
        idx = 0
        for i in range(self.pool_size):
            i_max = i + self.stride * out_h
            for j in range(self.pool_size):
                j_max = j + self.stride * out_w
                windows[..., idx] = x_padded[:, :, i:i_max:self.stride, j:j_max:self.stride]
                idx += 1
        return windows, out_h, out_w

    def _scatter_windows(self, grad_windows: np.ndarray) -> np.ndarray:
        """Scatter per-window gradients back to the (padded) input and crop."""
        n, c, h, w = self._input_shape
        out_h, out_w = grad_windows.shape[2], grad_windows.shape[3]
        grad_padded = np.zeros((n, c, h + 2 * self.padding, w + 2 * self.padding))
        idx = 0
        for i in range(self.pool_size):
            i_max = i + self.stride * out_h
            for j in range(self.pool_size):
                j_max = j + self.stride * out_w
                grad_padded[:, :, i:i_max:self.stride, j:j_max:self.stride] += grad_windows[..., idx]
                idx += 1
        if self.padding == 0:
            return grad_padded
        return grad_padded[:, :, self.padding:-self.padding, self.padding:-self.padding]

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if len(input_shape) != 3:
            raise ShapeError(
                f"{self.name}: expected per-sample input shape (C, H, W), got {input_shape}"
            )
        c, h, w = input_shape
        out_h = conv_output_size(h, self.pool_size, self.stride, self.padding)
        out_w = conv_output_size(w, self.pool_size, self.stride, self.padding)
        return (c, out_h, out_w)


class MaxPool2D(_Pool2D):
    """Max pooling over non-overlapping or strided windows."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 4:
            raise ShapeError(f"{self.name}: expected NCHW input, got shape {x.shape}")
        self._input_shape = x.shape
        windows, out_h, out_w = self._extract_windows(x)
        self._windows = windows
        return windows.max(axis=-1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._windows is None or self._input_shape is None:
            raise ShapeError(f"{self.name}: backward called before forward")
        windows = self._windows
        grad_output = np.asarray(grad_output, dtype=np.float64)
        if grad_output.shape != windows.shape[:4]:
            raise ShapeError(
                f"{self.name}: expected grad_output of shape {windows.shape[:4]}, "
                f"got {grad_output.shape}"
            )
        # Route each output gradient to the arg-max entry of its window.
        max_idx = windows.argmax(axis=-1)
        grad_windows = np.zeros_like(windows)
        np.put_along_axis(grad_windows, max_idx[..., None], grad_output[..., None], axis=-1)
        return self._scatter_windows(grad_windows)


class AvgPool2D(_Pool2D):
    """Average pooling over non-overlapping or strided windows."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 4:
            raise ShapeError(f"{self.name}: expected NCHW input, got shape {x.shape}")
        self._input_shape = x.shape
        windows, out_h, out_w = self._extract_windows(x)
        self._windows = windows
        return windows.mean(axis=-1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._windows is None or self._input_shape is None:
            raise ShapeError(f"{self.name}: backward called before forward")
        windows = self._windows
        grad_output = np.asarray(grad_output, dtype=np.float64)
        if grad_output.shape != windows.shape[:4]:
            raise ShapeError(
                f"{self.name}: expected grad_output of shape {windows.shape[:4]}, "
                f"got {grad_output.shape}"
            )
        share = grad_output[..., None] / windows.shape[-1]
        grad_windows = np.broadcast_to(share, windows.shape).copy()
        return self._scatter_windows(grad_windows)
