"""Spatial pooling layers (max and average).

Both layers pool by reducing over the ``k²`` shifted zero-copy strided slices
of the (padded) input rather than materializing an explicit window tensor —
for the small kernels used here this measures >2x faster than the windowed
formulation and allocates nothing beyond the output.  Max pooling pads with
``-inf`` so an all-negative window can never arg-max onto the padding (whose
gradient would be silently cropped away); average pooling keeps zero padding
(padded positions count toward the mean, matching the seed semantics).

Backward context follows the cache lifecycle documented in
:mod:`repro.nn.layers.base`: max pooling caches only the compact arg-max
index map (``k²`` times smaller than the window tensor the seed
implementation retained), average pooling only the input geometry, both only
in training mode, and both release their caches at the end of ``backward``.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.dtype import as_float, default_dtype
from repro.nn.functional import conv_output_size, pad_images
from repro.nn.layers.base import Layer
from repro.utils.validation import check_positive_int


class _Pool2D(Layer):
    """Shared geometry/bookkeeping for 2-D pooling layers."""

    _cache_attrs = ("_input_shape", "_out_hw")

    def __init__(
        self,
        pool_size: int = 2,
        stride: Optional[int] = None,
        *,
        padding: int = 0,
        name: str = "",
    ):
        super().__init__(name=name or type(self).__name__.lower())
        self.pool_size = check_positive_int(pool_size, "pool_size")
        self.stride = check_positive_int(stride if stride is not None else pool_size, "stride")
        if padding < 0:
            raise ValueError(f"padding must be >= 0, got {padding}")
        if padding >= self.pool_size:
            # With padding >= pool_size a border window can lie entirely in
            # the padding: its output would be a pure padding artifact (-inf
            # for max pooling) and its gradient would vanish.
            raise ValueError(
                f"padding must be < pool_size, got padding={padding} "
                f"with pool_size={self.pool_size}"
            )
        self.padding = int(padding)
        self._input_shape: Optional[Tuple[int, int, int, int]] = None
        self._out_hw: Optional[Tuple[int, int]] = None

    # ------------------------------------------------------------- geometry
    def _check_input(self, x: np.ndarray) -> Tuple[int, int]:
        if x.ndim != 4:
            raise ShapeError(f"{self.name}: expected NCHW input, got shape {x.shape}")
        out_h = conv_output_size(x.shape[2], self.pool_size, self.stride, self.padding)
        out_w = conv_output_size(x.shape[3], self.pool_size, self.stride, self.padding)
        return out_h, out_w

    def _offset_slices(self, out_h: int, out_w: int) -> Iterator[Tuple[slice, slice]]:
        """Spatial slices selecting window entry ``(i, j)`` across all windows."""
        for i in range(self.pool_size):
            row = slice(i, i + self.stride * out_h, self.stride)
            for j in range(self.pool_size):
                yield row, slice(j, j + self.stride * out_w, self.stride)

    def _check_grad(self, grad_output: np.ndarray) -> Tuple[int, int]:
        if self._input_shape is None or self._out_hw is None:
            raise ShapeError(f"{self.name}: backward called before forward")
        n, c, _, _ = self._input_shape
        expected = (n, c) + self._out_hw
        if grad_output.shape != expected:
            raise ShapeError(
                f"{self.name}: expected grad_output of shape {expected}, "
                f"got {grad_output.shape}"
            )
        return self._out_hw

    def _scatter(self, contributions) -> np.ndarray:
        """Sum per-offset gradient contributions into the input and crop padding.

        ``contributions`` maps each kernel offset's spatial slices to a
        ``(N, C, out_h, out_w)``-broadcastable gradient term; each add is one
        vectorized strided operation.
        """
        n, c, h, w = self._input_shape
        grad_padded = np.zeros(
            (n, c, h + 2 * self.padding, w + 2 * self.padding), dtype=default_dtype()
        )
        for (rows, cols), term in contributions:
            grad_padded[:, :, rows, cols] += term
        if self.padding == 0:
            return grad_padded
        return grad_padded[:, :, self.padding:-self.padding, self.padding:-self.padding]

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if len(input_shape) != 3:
            raise ShapeError(
                f"{self.name}: expected per-sample input shape (C, H, W), got {input_shape}"
            )
        c, h, w = input_shape
        out_h = conv_output_size(h, self.pool_size, self.stride, self.padding)
        out_w = conv_output_size(w, self.pool_size, self.stride, self.padding)
        return (c, out_h, out_w)


class MaxPool2D(_Pool2D):
    """Max pooling over non-overlapping or strided windows."""

    _cache_attrs = _Pool2D._cache_attrs + ("_argmax",)

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._argmax: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_float(x)
        out_h, out_w = self._check_input(x)
        # -inf padding: a padded position can never be the window maximum, so
        # gradients always route to a real input entry.
        x_padded = pad_images(x, self.padding, value=-np.inf)
        slabs = [x_padded[:, :, rows, cols] for rows, cols in self._offset_slices(out_h, out_w)]
        # Chained in-place maximum: same left-fold as ``np.maximum.reduce``
        # (max is exact, so bitwise identical) without materializing the
        # (k², N, C, out_h, out_w) stack the reduce would build.
        out = np.maximum(slabs[0], slabs[1]) if len(slabs) > 1 else slabs[0].copy()
        for slab in slabs[2:]:
            np.maximum(out, slab, out=out)
        if self.training:
            # Compact arg-max map; descending order (down to and including
            # offset 0) makes the first/lowest offset win ties, matching
            # ``argmax`` over explicit windows.
            argmax = np.zeros(out.shape, dtype=np.int16)
            for t in range(len(slabs) - 1, -1, -1):
                np.copyto(argmax, np.int16(t), where=(slabs[t] == out))
            self._input_shape = x.shape
            self._out_hw = (out_h, out_w)
            self._argmax = argmax
        else:
            self.release_caches()
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_output = as_float(grad_output)
        self._check_grad(grad_output)
        argmax = self._argmax
        out_h, out_w = self._out_hw
        grad_input = self._scatter(
            (spatial, np.where(argmax == t, grad_output, 0.0))
            for t, spatial in enumerate(self._offset_slices(out_h, out_w))
        )
        self.release_caches()
        return grad_input


class AvgPool2D(_Pool2D):
    """Average pooling over non-overlapping or strided windows."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_float(x)
        out_h, out_w = self._check_input(x)
        x_padded = pad_images(x, self.padding)
        acc: Optional[np.ndarray] = None
        for rows, cols in self._offset_slices(out_h, out_w):
            slab = x_padded[:, :, rows, cols]
            acc = slab.copy() if acc is None else np.add(acc, slab, out=acc)
        out = acc / (self.pool_size * self.pool_size)
        if self.training:
            self._input_shape = x.shape
            self._out_hw = (out_h, out_w)
        else:
            self.release_caches()
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_output = as_float(grad_output)
        out_h, out_w = self._check_grad(grad_output)
        share = grad_output / (self.pool_size * self.pool_size)
        grad_input = self._scatter(
            (spatial, share) for spatial in self._offset_slices(out_h, out_w)
        )
        self.release_caches()
        return grad_input
