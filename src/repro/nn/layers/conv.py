"""2-D convolution layer implemented with im2col matrix multiplication."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ShapeError
from repro.nn import functional as F
from repro.nn.dtype import as_float
from repro.nn.initializers import get_initializer
from repro.nn.layers.base import Layer
from repro.nn.parameter import Parameter
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import check_positive_int


class Conv2D(Layer):
    """Standard 2-D convolution over NCHW inputs.

    The kernel tensor has shape ``(out_channels, in_channels, kh, kw)``.  The
    flattened view ``(out_channels, in_channels·kh·kw)`` is the ``N×M`` weight
    matrix the paper factorizes (one row per filter), exposed through
    :attr:`weight_matrix`.

    The im2col patch matrix is cached for the backward pass only in training
    mode and released at the end of ``backward`` (see
    :mod:`repro.nn.layers.base` for the cache lifecycle).
    """

    _cache_attrs = ("_cols_cache", "_input_shape", "_out_hw")

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        *,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        weight_init="he_normal",
        name: str = "",
        rng: RngLike = None,
    ):
        super().__init__(name=name or "conv2d")
        self.in_channels = check_positive_int(in_channels, "in_channels")
        self.out_channels = check_positive_int(out_channels, "out_channels")
        self.kernel_size = check_positive_int(kernel_size, "kernel_size")
        self.stride = check_positive_int(stride, "stride")
        if padding < 0:
            raise ValueError(f"padding must be >= 0, got {padding}")
        self.padding = int(padding)
        self.use_bias = bool(bias)

        rng = as_rng(rng)
        fan_in = self.in_channels * self.kernel_size * self.kernel_size
        fan_out = self.out_channels * self.kernel_size * self.kernel_size
        init = get_initializer(weight_init)
        kernel = init(
            (self.out_channels, self.in_channels, self.kernel_size, self.kernel_size),
            fan_in,
            fan_out,
            rng,
        )
        self.weight = self.add_parameter("weight", Parameter(kernel))
        if self.use_bias:
            self.bias: Optional[Parameter] = self.add_parameter(
                "bias", Parameter(np.zeros(self.out_channels))
            )
        else:
            self.bias = None
        self._cols_cache: Optional[np.ndarray] = None
        self._input_shape: Optional[Tuple[int, int, int, int]] = None
        self._out_hw: Optional[Tuple[int, int]] = None

    # ----------------------------------------------------------------- math
    @property
    def fan_in(self) -> int:
        """Flattened receptive-field size ``in_channels · kh · kw``."""
        return self.in_channels * self.kernel_size * self.kernel_size

    @property
    def weight_matrix(self) -> np.ndarray:
        """The ``(out_channels, fan_in)`` matrix view of the kernel tensor."""
        return self.weight.data.reshape(self.out_channels, self.fan_in)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_float(x)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ShapeError(
                f"{self.name}: expected input of shape (batch, {self.in_channels}, H, W), "
                f"got {x.shape}"
            )
        cols, out_h, out_w = F.im2col(
            x, self.kernel_size, self.kernel_size, self.stride, self.padding
        )
        if self.training:
            self._cols_cache = cols
            self._input_shape = x.shape
            self._out_hw = (out_h, out_w)
        else:
            self.release_caches()
        out = cols @ self.weight_matrix.T  # (N*out_h*out_w, out_channels)
        if self.bias is not None:
            out = out + self.bias.data
        n = x.shape[0]
        return out.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cols_cache is None or self._input_shape is None or self._out_hw is None:
            raise ShapeError(f"{self.name}: backward called before forward")
        n = self._input_shape[0]
        out_h, out_w = self._out_hw
        expected = (n, self.out_channels, out_h, out_w)
        grad_output = as_float(grad_output)
        if grad_output.shape != expected:
            raise ShapeError(
                f"{self.name}: expected grad_output of shape {expected}, got {grad_output.shape}"
            )
        grad_mat = grad_output.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)
        grad_weight = (grad_mat.T @ self._cols_cache).reshape(self.weight.data.shape)
        self.weight.accumulate_grad(grad_weight)
        if self.bias is not None:
            self.bias.accumulate_grad(grad_mat.sum(axis=0))
        grad_input = F.conv_backward_input(
            grad_mat,
            self.weight_matrix,
            self._input_shape,
            self.kernel_size,
            self.kernel_size,
            self.stride,
            self.padding,
        )
        self.release_caches()
        return grad_input

    # ------------------------------------------------------------- geometry
    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if len(input_shape) != 3 or input_shape[0] != self.in_channels:
            raise ShapeError(
                f"{self.name}: expected per-sample input shape ({self.in_channels}, H, W), "
                f"got {input_shape}"
            )
        _, h, w = input_shape
        out_h = F.conv_output_size(h, self.kernel_size, self.stride, self.padding)
        out_w = F.conv_output_size(w, self.kernel_size, self.stride, self.padding)
        return (self.out_channels, out_h, out_w)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Conv2D(name={self.name!r}, in={self.in_channels}, out={self.out_channels}, "
            f"k={self.kernel_size}, stride={self.stride}, padding={self.padding})"
        )
