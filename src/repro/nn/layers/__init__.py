"""Layer zoo for the numpy neural-network substrate."""

from repro.nn.layers.activations import LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.layers.base import Layer
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.linear import Linear
from repro.nn.layers.lowrank_conv import LowRankConv2D
from repro.nn.layers.lowrank_linear import LowRankLinear
from repro.nn.layers.pooling import AvgPool2D, MaxPool2D
from repro.nn.layers.reshape import Dropout, Flatten

__all__ = [
    "Layer",
    "Linear",
    "LowRankLinear",
    "Conv2D",
    "LowRankConv2D",
    "MaxPool2D",
    "AvgPool2D",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Flatten",
    "Dropout",
]
