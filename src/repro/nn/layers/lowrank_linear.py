"""Low-rank factorized dense layer.

A :class:`LowRankLinear` keeps the factorization ``W ≈ U · Vᵀ`` explicit:
``U ∈ R^{out×K}`` and ``V ∈ R^{in×K}``.  The forward pass computes
``y = ((x · V) · Uᵀ) + b`` which corresponds to two crossbar stages in the
hardware realization (``V`` maps the ``in`` inputs to ``K`` intermediate
lines, ``Uᵀ`` maps those to the ``out`` outputs).

Rank clipping (:class:`repro.core.rank_clipping.RankClipper`) shrinks ``K``
in place during training by projecting ``U`` onto a lower-rank subspace and
absorbing the projection basis into ``V``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import RankError, ShapeError
from repro.nn.dtype import as_float
from repro.nn.initializers import get_initializer
from repro.nn.layers.base import Layer
from repro.nn.parameter import Parameter
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import check_positive_int


class LowRankLinear(Layer):
    """Fully-connected layer with an explicit rank-``K`` factorization."""

    _cache_attrs = ("_input_cache", "_mid_cache")

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rank: Optional[int] = None,
        *,
        bias: bool = True,
        weight_init="he_normal",
        name: str = "",
        rng: RngLike = None,
    ):
        super().__init__(name=name or "lowrank_linear")
        self.in_features = check_positive_int(in_features, "in_features")
        self.out_features = check_positive_int(out_features, "out_features")
        max_rank = min(self.in_features, self.out_features)
        if rank is None:
            rank = max_rank
        rank = check_positive_int(rank, "rank")
        if rank > max_rank:
            raise RankError(
                f"rank {rank} exceeds min(in_features, out_features) = {max_rank}"
            )
        self.rank = rank
        self.use_bias = bool(bias)

        rng = as_rng(rng)
        init = get_initializer(weight_init)
        # Initialize U and V so that the product U·Vᵀ has roughly the same
        # scale as a dense He-initialized weight matrix of the same shape.
        u = init((self.out_features, self.rank), self.rank, self.out_features, rng)
        v = init((self.in_features, self.rank), self.in_features, self.rank, rng)
        self.u = self.add_parameter("u", Parameter(u))
        self.v = self.add_parameter("v", Parameter(v))
        if self.use_bias:
            self.bias: Optional[Parameter] = self.add_parameter(
                "bias", Parameter(np.zeros(self.out_features))
            )
        else:
            self.bias = None
        self._input_cache: Optional[np.ndarray] = None
        self._mid_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------ factories
    @classmethod
    def from_dense(
        cls,
        weight: np.ndarray,
        bias: Optional[np.ndarray] = None,
        rank: Optional[int] = None,
        *,
        name: str = "",
    ) -> "LowRankLinear":
        """Build a factorized layer from a dense ``(out, in)`` weight matrix.

        The split is computed by SVD, so ``rank=None`` (full rank) reproduces
        the dense weight exactly — the "full-rank LRA without reconstruction
        errors" that Algorithm 2 starts from — while a smaller ``rank`` gives
        the optimal (Frobenius) truncation, i.e. the paper's "Direct LRA"
        baseline.
        """
        weight = as_float(weight)
        if weight.ndim != 2:
            raise ShapeError(f"weight must be 2-D, got shape {weight.shape}")
        out_features, in_features = weight.shape
        max_rank = min(in_features, out_features)
        if rank is None:
            rank = max_rank
        if rank > max_rank:
            raise RankError(f"rank {rank} exceeds min(out, in) = {max_rank}")
        layer = cls(
            in_features,
            out_features,
            rank=rank,
            bias=bias is not None,
            name=name or "lowrank_linear",
        )
        u_mat, s, vt = np.linalg.svd(weight, full_matrices=False)
        k = rank
        layer.u.data = u_mat[:, :k] * s[:k]
        # ascontiguousarray: vt.T is a Fortran-ordered view, and BLAS kernels
        # for transposed operands are not bit-for-bit interchangeable with the
        # contiguous path; every Parameter keeps one canonical (C) layout so
        # downstream products are layout-independent (the lockstep trainer's
        # stacked matmuls rely on this).
        layer.v.data = np.ascontiguousarray(vt[:k, :].T)
        if bias is not None:
            layer.bias.data = as_float(bias).copy()
        return layer

    # ----------------------------------------------------------------- math
    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_float(x)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ShapeError(
                f"{self.name}: expected input of shape (batch, {self.in_features}), got {x.shape}"
            )
        mid = x @ self.v.data  # (batch, K)
        if self.training:
            self._input_cache = x
            self._mid_cache = mid
        else:
            self.release_caches()
        out = mid @ self.u.data.T  # (batch, out)
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_cache is None or self._mid_cache is None:
            raise ShapeError(f"{self.name}: backward called before forward")
        x = self._input_cache
        mid = self._mid_cache
        grad_output = as_float(grad_output)
        if grad_output.shape != (x.shape[0], self.out_features):
            raise ShapeError(
                f"{self.name}: expected grad_output of shape "
                f"({x.shape[0]}, {self.out_features}), got {grad_output.shape}"
            )
        # y = mid · Uᵀ ; mid = x · V
        self.u.accumulate_grad(grad_output.T @ mid)
        grad_mid = grad_output @ self.u.data  # (batch, K)
        self.v.accumulate_grad(x.T @ grad_mid)
        if self.bias is not None:
            self.bias.accumulate_grad(grad_output.sum(axis=0))
        self.release_caches()
        return grad_mid @ self.v.data.T

    # -------------------------------------------------------------- clipping
    def effective_weight(self) -> np.ndarray:
        """Return the reconstructed dense weight ``U · Vᵀ`` (shape out×in)."""
        return self.u.data @ self.v.data.T

    def set_factors(self, u: np.ndarray, v: np.ndarray) -> None:
        """Replace the factors (used by rank clipping), updating ``rank``.

        Any pruning masks on the old factors are discarded because their
        shapes no longer apply.
        """
        u = as_float(u)
        v = as_float(v)
        if u.ndim != 2 or v.ndim != 2:
            raise ShapeError("factors must be 2-D")
        if u.shape[0] != self.out_features:
            raise ShapeError(
                f"U must have {self.out_features} rows, got shape {u.shape}"
            )
        if v.shape[0] != self.in_features:
            raise ShapeError(
                f"V must have {self.in_features} rows, got shape {v.shape}"
            )
        if u.shape[1] != v.shape[1]:
            raise ShapeError(
                f"U and V must share the rank dimension, got {u.shape} and {v.shape}"
            )
        new_rank = u.shape[1]
        if new_rank < 1 or new_rank > min(self.in_features, self.out_features):
            raise RankError(f"new rank {new_rank} is out of range for this layer")
        self.u.clear_mask()
        self.v.clear_mask()
        self.u.data = u.copy()
        self.u.grad = np.zeros_like(self.u.data)
        self.v.data = v.copy()
        self.v.grad = np.zeros_like(self.v.data)
        self.rank = new_rank

    # ------------------------------------------------------------- geometry
    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if input_shape != (self.in_features,):
            raise ShapeError(
                f"{self.name}: expected per-sample input shape ({self.in_features},), "
                f"got {input_shape}"
            )
        return (self.out_features,)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LowRankLinear(name={self.name!r}, in={self.in_features}, "
            f"out={self.out_features}, rank={self.rank})"
        )
