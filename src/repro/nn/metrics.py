"""Classification metrics."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ShapeError


def accuracy(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Top-1 accuracy.

    ``predictions`` may be logits/probabilities ``(batch, classes)`` or already
    arg-maxed class indices ``(batch,)``.
    """
    predictions = np.asarray(predictions)
    targets = np.asarray(targets)
    if predictions.ndim == 2:
        predicted = np.argmax(predictions, axis=1)
    elif predictions.ndim == 1:
        predicted = predictions
    else:
        raise ShapeError(f"predictions must be 1-D or 2-D, got shape {predictions.shape}")
    if predicted.shape != targets.shape:
        raise ShapeError(
            f"predictions and targets disagree on batch size: {predicted.shape} vs {targets.shape}"
        )
    if predicted.size == 0:
        raise ValueError("cannot compute accuracy of an empty batch")
    return float(np.mean(predicted == targets))


def error_rate(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Classification error ``1 - accuracy`` (the x-axis of the paper's figures)."""
    return 1.0 - accuracy(predictions, targets)


def top_k_accuracy(logits: np.ndarray, targets: np.ndarray, k: int = 5) -> float:
    """Top-``k`` accuracy from a ``(batch, classes)`` score matrix."""
    logits = np.asarray(logits)
    targets = np.asarray(targets)
    if logits.ndim != 2:
        raise ShapeError(f"logits must be 2-D, got shape {logits.shape}")
    if k < 1 or k > logits.shape[1]:
        raise ValueError(f"k must be in [1, {logits.shape[1]}], got {k}")
    top_k = np.argsort(-logits, axis=1)[:, :k]
    hits = np.any(top_k == targets[:, None], axis=1)
    return float(np.mean(hits))


def confusion_matrix(
    predictions: np.ndarray, targets: np.ndarray, num_classes: Optional[int] = None
) -> np.ndarray:
    """Return the ``(num_classes, num_classes)`` confusion matrix (rows = truth)."""
    predictions = np.asarray(predictions)
    targets = np.asarray(targets)
    if predictions.ndim == 2:
        predictions = np.argmax(predictions, axis=1)
    if predictions.shape != targets.shape:
        raise ShapeError("predictions and targets must have the same length")
    if num_classes is None:
        num_classes = int(max(predictions.max(initial=0), targets.max(initial=0))) + 1
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    for truth, predicted in zip(targets.astype(int), predictions.astype(int)):
        matrix[truth, predicted] += 1
    return matrix
