"""Batched multi-network evaluation.

Hyper-parameter sweeps produce K networks of identical architecture that must
all be evaluated on the *same* test inputs.  Running K independent forward
passes repeats the expensive input-side work K times — most notably the
im2col patch extraction of every convolution — and issues K small matrix
multiplies per layer where one batched multiply would do.

:func:`stacked_predict` evaluates K same-architecture networks together:

* Activations start out **shared** (identical for every network, because the
  inputs are identical).  While shared, weighted layers consume the single
  activation tensor via a broadcast batched matmul against the K stacked
  weight tensors — for convolutions the im2col patch matrix is extracted
  once and reused by all K networks.
* After the first weighted layer the activations diverge; they are kept as
  one ``(K·N, ...)`` super-batch.  Parameter-free layers (pooling,
  activations, flatten) treat the super-batch like any other batch, so a
  single vectorized call processes all K networks.  Weighted layers reshape
  to ``(K, ·, features)`` and run one stacked ``np.matmul`` against the
  ``(K, ...)`` weight stack instead of K separate products.  Convolutions
  still extract patches in a single :func:`~repro.nn.functional.im2col` call
  over the super-batch.

:func:`batched_evaluate` adds signature grouping on top: networks whose
architectures differ (e.g. ε sweep points that converged to different ranks)
are partitioned into stackable groups, with singleton groups falling back to
the ordinary per-network ``predict``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import LayerError, ShapeError
from repro.nn import functional as F
from repro.nn.dtype import as_float
from repro.nn.layers import Conv2D, Linear, LowRankConv2D, LowRankLinear
from repro.nn.metrics import accuracy
from repro.nn.network import Sequential

_WEIGHTED = (Linear, LowRankLinear, Conv2D, LowRankConv2D)


#: Layer attributes that change eval-mode math and must therefore agree for
#: two networks to share one stacked program.  (``Dropout.rate`` is absent on
#: purpose: dropout is the identity in inference mode.)
_CONFIG_ATTRS = ("kernel_size", "stride", "padding", "pool_size", "negative_slope")


def architecture_signature(network: Sequential) -> Tuple:
    """Stacking key: layer types, configuration and parameter shapes, in order.

    Two networks with equal signatures can be evaluated with stacked weight
    tensors; differing ranks, channel counts or layer configuration (pool
    geometry, activation slopes, …) yield different signatures.
    """
    parts = []
    for layer in network:
        entry: Tuple = (type(layer).__name__,)
        config = tuple(
            (attr, getattr(layer, attr))
            for attr in _CONFIG_ATTRS
            if hasattr(layer, attr)
        )
        if isinstance(layer, _WEIGHTED):
            shapes = tuple(
                (name, param.data.shape) for name, param in sorted(layer.parameters().items())
            )
            entry += (shapes, config)
        elif config:
            entry += (config,)
        parts.append(entry)
    return tuple(parts)


def _stack(layers: Sequence, attribute: str, *, transpose: bool = False) -> np.ndarray:
    """Stack one parameter across the K aligned layers: ``(K, *shape)``.

    ``transpose=True`` returns the transposed *view* of the stack (last two
    axes swapped): each slice then carries exactly the strides the
    per-network forward multiplies against, keeping the batched matmul
    bit-identical to K independent products.
    """
    stacked = np.stack([getattr(layer, attribute).data for layer in layers])
    return stacked.transpose(0, 2, 1) if transpose else stacked


def _bias_stack(layers: Sequence) -> Optional[np.ndarray]:
    if layers[0].bias is None:
        return None
    return np.stack([layer.bias.data for layer in layers])[:, None, :]


def _conv_cols(h: np.ndarray, layer) -> Tuple[np.ndarray, int, int]:
    return F.im2col(h, layer.kernel_size, layer.kernel_size, layer.stride, layer.padding)


@dataclass
class _Step:
    """One compiled layer of the stacked program.

    ``kind`` is ``"conv"``, ``"dense"`` or ``"layer"`` (parameter-free
    passthrough).  Weight stacks are materialized once per
    :func:`stacked_predict` call and reused for every mini-batch chunk.
    """

    kind: str
    layer: object
    factors: Tuple[np.ndarray, ...] = ()
    bias: Optional[np.ndarray] = None


def _compile(networks: Sequence[Sequential]) -> List[_Step]:
    """Pre-stack every weighted layer of the K aligned networks."""
    steps: List[_Step] = []
    for position in range(len(networks[0])):
        layers = [network[position] for network in networks]
        layer0 = layers[0]
        if isinstance(layer0, (LowRankConv2D, LowRankLinear)):
            kind = "conv" if isinstance(layer0, LowRankConv2D) else "dense"
            steps.append(
                _Step(
                    kind=kind,
                    layer=layer0,
                    factors=(
                        _stack(layers, "v"),
                        _stack(layers, "u", transpose=True),
                    ),
                    bias=_bias_stack(layers),
                )
            )
        elif isinstance(layer0, Conv2D):
            weight_stack = np.stack(
                [layer.weight_matrix for layer in layers]
            ).transpose(0, 2, 1)
            steps.append(
                _Step(kind="conv", layer=layer0, factors=(weight_stack,), bias=_bias_stack(layers))
            )
        elif isinstance(layer0, Linear):
            steps.append(
                _Step(
                    kind="dense",
                    layer=layer0,
                    factors=(_stack(layers, "weight", transpose=True),),
                    bias=_bias_stack(layers),
                )
            )
        else:
            steps.append(_Step(kind="layer", layer=layer0))
    return steps


class _Activations:
    """Either one shared activation tensor or a ``(K·N, ...)`` super-batch."""

    def __init__(self, value: np.ndarray, *, num_networks: int, shared: bool):
        self.value = value
        self.num_networks = num_networks
        self.shared = shared

    def per_network_2d(self) -> np.ndarray:
        """View the super-batch as ``(K, rows_per_network, features)``."""
        rows, features = self.value.shape
        return self.value.reshape(self.num_networks, rows // self.num_networks, features)


def _matmul_stacked(
    acts: _Activations, weight_stack: np.ndarray, bias_stack: Optional[np.ndarray]
) -> np.ndarray:
    """``(K, rows, in) @ (K, in, out)`` (broadcasting the shared case).

    Returns a ``(K·rows, out)`` super-batch.
    """
    k = acts.num_networks
    if acts.shared:
        out = np.matmul(acts.value, weight_stack)  # (rows, in) x (K, in, out)
    else:
        out = np.matmul(acts.per_network_2d(), weight_stack)
    if bias_stack is not None:
        out = out + bias_stack
    return out.reshape(k * out.shape[1], out.shape[2])


def _forward_spatial_step(acts: _Activations, step: _Step) -> _Activations:
    """Conv / low-rank conv over the (shared or stacked) NCHW activations."""
    layer = step.layer
    n = acts.value.shape[0] if acts.shared else acts.value.shape[0] // acts.num_networks
    cols, out_h, out_w = _conv_cols(acts.value, layer)
    cols_acts = _Activations(cols, num_networks=acts.num_networks, shared=acts.shared)
    if len(step.factors) == 2:  # low-rank: basis filters then 1x1 mixing
        mid = _matmul_stacked(cols_acts, step.factors[0], None)
        mid_acts = _Activations(mid, num_networks=acts.num_networks, shared=False)
        out = _matmul_stacked(mid_acts, step.factors[1], step.bias)
    else:
        out = _matmul_stacked(cols_acts, step.factors[0], step.bias)
    value = out.reshape(
        acts.num_networks * n, out_h, out_w, layer.out_channels
    ).transpose(0, 3, 1, 2)
    return _Activations(value, num_networks=acts.num_networks, shared=False)


def _forward_dense_step(acts: _Activations, step: _Step) -> _Activations:
    """Linear / low-rank linear over the (shared or stacked) 2-D activations."""
    if len(step.factors) == 2:
        mid = _matmul_stacked(acts, step.factors[0], None)
        mid_acts = _Activations(mid, num_networks=acts.num_networks, shared=False)
        out = _matmul_stacked(mid_acts, step.factors[1], step.bias)
    else:
        out = _matmul_stacked(acts, step.factors[0], step.bias)
    return _Activations(out, num_networks=acts.num_networks, shared=False)


def _stacked_forward(steps: Sequence[_Step], x: np.ndarray, k: int) -> np.ndarray:
    """One inference pass of the compiled program; returns ``(K, N, out)``."""
    n = x.shape[0]
    acts = _Activations(as_float(x), num_networks=k, shared=True)
    for step in steps:
        if step.kind == "conv":
            acts = _forward_spatial_step(acts, step)
        elif step.kind == "dense":
            acts = _forward_dense_step(acts, step)
        else:
            # Parameter-free layers treat the K·N super-batch (or the shared
            # batch) exactly like a plain batch; inference mode caches nothing.
            acts = _Activations(
                step.layer.forward(acts.value), num_networks=k, shared=acts.shared
            )
    value = acts.value
    if acts.shared:
        value = np.broadcast_to(value[None], (k,) + value.shape)
    else:
        value = value.reshape(k, n, *value.shape[1:])
    if value.ndim != 3:
        raise ShapeError(
            f"stacked forward expected (K, N, classes) logits, got shape {value.shape}"
        )
    return value


def stacked_predict(
    networks: Sequence[Sequential],
    inputs: np.ndarray,
    *,
    batch_size: Optional[int] = None,
) -> np.ndarray:
    """Inference logits ``(K, N, classes)`` of K same-architecture networks.

    The networks must share an :func:`architecture_signature`; use
    :func:`batched_evaluate` when they may differ.  All networks are put in
    inference mode for the pass and restored afterwards.
    """
    if not networks:
        raise LayerError("stacked_predict needs at least one network")
    signatures = {architecture_signature(network) for network in networks}
    if len(signatures) != 1:
        raise LayerError(
            "stacked_predict requires identical architectures; "
            "use batched_evaluate to group mixed networks"
        )
    saved = [[layer.training for layer in network] for network in networks]
    for network in networks:
        network.eval()
    try:
        steps = _compile(networks)
        k = len(networks)
        if batch_size is None:
            return _stacked_forward(steps, inputs, k)
        chunks = [
            _stacked_forward(steps, inputs[start : start + batch_size], k)
            for start in range(0, inputs.shape[0], batch_size)
        ]
        return np.concatenate(chunks, axis=1)
    finally:
        for network, flags in zip(networks, saved):
            for layer, flag in zip(network, flags):
                layer.training = flag


def batched_evaluate(
    networks: Sequence[Sequential],
    inputs: np.ndarray,
    targets: np.ndarray,
    *,
    batch_size: int = 256,
) -> List[float]:
    """Test accuracy of every network, sharing work across identical ones.

    Networks are grouped by :func:`architecture_signature`; each group of two
    or more is evaluated with :func:`stacked_predict` (im2col extracted once
    per group, stacked matmuls), singletons with the ordinary per-network
    ``predict``.  Results are returned in input order.
    """
    if not networks:
        return []
    groups: Dict[Tuple, List[int]] = {}
    for index, network in enumerate(networks):
        groups.setdefault(architecture_signature(network), []).append(index)
    accuracies: List[Optional[float]] = [None] * len(networks)
    for indices in groups.values():
        if len(indices) == 1:
            logits = networks[indices[0]].predict(inputs, batch_size=batch_size)
            accuracies[indices[0]] = accuracy(logits, targets)
            continue
        stacked = stacked_predict(
            [networks[i] for i in indices], inputs, batch_size=batch_size
        )
        for slot, index in enumerate(indices):
            accuracies[index] = accuracy(stacked[slot], targets)
    return [float(value) for value in accuracies]
