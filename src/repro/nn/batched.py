"""Batched multi-network evaluation.

Hyper-parameter sweeps produce K networks of identical architecture that must
all be evaluated on the *same* test inputs.  Running K independent forward
passes repeats the expensive input-side work K times — most notably the
im2col patch extraction of every convolution — and issues K small matrix
multiplies per layer where one batched multiply would do.

:func:`stacked_predict` evaluates K same-architecture networks together:

* Activations start out **shared** (identical for every network, because the
  inputs are identical).  While shared, weighted layers consume the single
  activation tensor via a broadcast batched matmul against the K stacked
  weight tensors — for convolutions the im2col patch matrix is extracted
  once and reused by all K networks.
* After the first weighted layer the activations diverge; they are kept as
  one ``(K·N, ...)`` super-batch.  Parameter-free layers (pooling,
  activations, flatten) treat the super-batch like any other batch, so a
  single vectorized call processes all K networks.  Weighted layers reshape
  to ``(K, ·, features)`` and run one stacked ``np.matmul`` against the
  ``(K, ...)`` weight stack instead of K separate products.  Convolutions
  still extract patches in a single :func:`~repro.nn.functional.im2col` call
  over the super-batch.

:func:`batched_evaluate` adds signature grouping on top: networks whose
architectures differ (e.g. ε sweep points that converged to different ranks)
are partitioned into stackable groups, with singleton groups falling back to
the ordinary per-network ``predict``.

Training-mode stacking
----------------------
:class:`NetworkStack` extends the same machinery to *training*: the K
networks' parameters are gathered into ``(K, …)`` :class:`StackedParameter`
slabs and every per-point ``Parameter.data``/``grad`` is re-bound to a
zero-copy view of its slab row, so per-point code (regularizers, callbacks,
routing analyses) reads and writes the live slab with no synchronization
step.  The stack compiles a stacked forward *and* backward program — im2col
extracted once per mini-batch when the points share a data stream, one
``(K, out, in)`` batched matmul per weighted layer, parameter-free layers
riding the ``(K·N, …)`` super-batch — whose per-point results are
bit-identical to K independent ``forward``/``backward`` passes.  The
:class:`~repro.nn.trainer.LockstepTrainer` drives the stack;
:class:`~repro.nn.optim.lockstep.LockstepSGD` updates the slabs in place so
the per-point views stay valid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import LayerError, ShapeError
from repro.nn import functional as F
from repro.nn.dtype import as_float
from repro.nn.layers import Conv2D, Dropout, Linear, LowRankConv2D, LowRankLinear
from repro.nn.metrics import accuracy
from repro.nn.network import Sequential
from repro.nn.parameter import Parameter

_WEIGHTED = (Linear, LowRankLinear, Conv2D, LowRankConv2D)


#: Layer attributes that change eval-mode math and must therefore agree for
#: two networks to share one stacked program.  (``Dropout.rate`` is absent on
#: purpose: dropout is the identity in inference mode.)
_CONFIG_ATTRS = ("kernel_size", "stride", "padding", "pool_size", "negative_slope")


def architecture_signature(network: Sequential) -> Tuple:
    """Stacking key: layer types, configuration and parameter shapes, in order.

    Two networks with equal signatures can be evaluated with stacked weight
    tensors; differing ranks, channel counts or layer configuration (pool
    geometry, activation slopes, …) yield different signatures.
    """
    parts = []
    for layer in network:
        entry: Tuple = (type(layer).__name__,)
        config = tuple(
            (attr, getattr(layer, attr))
            for attr in _CONFIG_ATTRS
            if hasattr(layer, attr)
        )
        if isinstance(layer, _WEIGHTED):
            shapes = tuple(
                (name, param.data.shape) for name, param in sorted(layer.parameters().items())
            )
            entry += (shapes, config)
        elif config:
            entry += (config,)
        parts.append(entry)
    return tuple(parts)


def _stack(layers: Sequence, attribute: str, *, transpose: bool = False) -> np.ndarray:
    """Stack one parameter across the K aligned layers: ``(K, *shape)``.

    ``transpose=True`` returns the transposed *view* of the stack (last two
    axes swapped): each slice then carries exactly the strides the
    per-network forward multiplies against, keeping the batched matmul
    bit-identical to K independent products.
    """
    stacked = np.stack([getattr(layer, attribute).data for layer in layers])
    return stacked.transpose(0, 2, 1) if transpose else stacked


def _bias_stack(layers: Sequence) -> Optional[np.ndarray]:
    if layers[0].bias is None:
        return None
    return np.stack([layer.bias.data for layer in layers])[:, None, :]


def _conv_cols(h: np.ndarray, layer) -> Tuple[np.ndarray, int, int]:
    return F.im2col(h, layer.kernel_size, layer.kernel_size, layer.stride, layer.padding)


@dataclass
class _Step:
    """One compiled layer of the stacked program.

    ``kind`` is ``"conv"``, ``"dense"`` or ``"layer"`` (parameter-free
    passthrough).  Weight stacks are materialized once per
    :func:`stacked_predict` call and reused for every mini-batch chunk.
    """

    kind: str
    layer: object
    factors: Tuple[np.ndarray, ...] = ()
    bias: Optional[np.ndarray] = None


def _compile(networks: Sequence[Sequential]) -> List[_Step]:
    """Pre-stack every weighted layer of the K aligned networks."""
    steps: List[_Step] = []
    for position in range(len(networks[0])):
        layers = [network[position] for network in networks]
        layer0 = layers[0]
        if isinstance(layer0, (LowRankConv2D, LowRankLinear)):
            kind = "conv" if isinstance(layer0, LowRankConv2D) else "dense"
            steps.append(
                _Step(
                    kind=kind,
                    layer=layer0,
                    factors=(
                        _stack(layers, "v"),
                        _stack(layers, "u", transpose=True),
                    ),
                    bias=_bias_stack(layers),
                )
            )
        elif isinstance(layer0, Conv2D):
            weight_stack = np.stack(
                [layer.weight_matrix for layer in layers]
            ).transpose(0, 2, 1)
            steps.append(
                _Step(kind="conv", layer=layer0, factors=(weight_stack,), bias=_bias_stack(layers))
            )
        elif isinstance(layer0, Linear):
            steps.append(
                _Step(
                    kind="dense",
                    layer=layer0,
                    factors=(_stack(layers, "weight", transpose=True),),
                    bias=_bias_stack(layers),
                )
            )
        else:
            steps.append(_Step(kind="layer", layer=layer0))
    return steps


class _Activations:
    """Either one shared activation tensor or a ``(K·N, ...)`` super-batch."""

    def __init__(self, value: np.ndarray, *, num_networks: int, shared: bool):
        self.value = value
        self.num_networks = num_networks
        self.shared = shared

    def per_network_2d(self) -> np.ndarray:
        """View the super-batch as ``(K, rows_per_network, features)``."""
        rows, features = self.value.shape
        return self.value.reshape(self.num_networks, rows // self.num_networks, features)


def _matmul_stacked(
    acts: _Activations, weight_stack: np.ndarray, bias_stack: Optional[np.ndarray]
) -> np.ndarray:
    """``(K, rows, in) @ (K, in, out)`` (broadcasting the shared case).

    Returns a ``(K·rows, out)`` super-batch.
    """
    k = acts.num_networks
    if acts.shared:
        out = np.matmul(acts.value, weight_stack)  # (rows, in) x (K, in, out)
    else:
        out = np.matmul(acts.per_network_2d(), weight_stack)
    if bias_stack is not None:
        out = out + bias_stack
    return out.reshape(k * out.shape[1], out.shape[2])


def _forward_spatial_step(acts: _Activations, step: _Step) -> _Activations:
    """Conv / low-rank conv over the (shared or stacked) NCHW activations."""
    layer = step.layer
    n = acts.value.shape[0] if acts.shared else acts.value.shape[0] // acts.num_networks
    cols, out_h, out_w = _conv_cols(acts.value, layer)
    cols_acts = _Activations(cols, num_networks=acts.num_networks, shared=acts.shared)
    if len(step.factors) == 2:  # low-rank: basis filters then 1x1 mixing
        mid = _matmul_stacked(cols_acts, step.factors[0], None)
        mid_acts = _Activations(mid, num_networks=acts.num_networks, shared=False)
        out = _matmul_stacked(mid_acts, step.factors[1], step.bias)
    else:
        out = _matmul_stacked(cols_acts, step.factors[0], step.bias)
    value = out.reshape(
        acts.num_networks * n, out_h, out_w, layer.out_channels
    ).transpose(0, 3, 1, 2)
    return _Activations(value, num_networks=acts.num_networks, shared=False)


def _forward_dense_step(acts: _Activations, step: _Step) -> _Activations:
    """Linear / low-rank linear over the (shared or stacked) 2-D activations."""
    if len(step.factors) == 2:
        mid = _matmul_stacked(acts, step.factors[0], None)
        mid_acts = _Activations(mid, num_networks=acts.num_networks, shared=False)
        out = _matmul_stacked(mid_acts, step.factors[1], step.bias)
    else:
        out = _matmul_stacked(acts, step.factors[0], step.bias)
    return _Activations(out, num_networks=acts.num_networks, shared=False)


def _stacked_forward(steps: Sequence[_Step], x: np.ndarray, k: int) -> np.ndarray:
    """One inference pass of the compiled program; returns ``(K, N, out)``."""
    n = x.shape[0]
    acts = _Activations(as_float(x), num_networks=k, shared=True)
    for step in steps:
        if step.kind == "conv":
            acts = _forward_spatial_step(acts, step)
        elif step.kind == "dense":
            acts = _forward_dense_step(acts, step)
        else:
            # Parameter-free layers treat the K·N super-batch (or the shared
            # batch) exactly like a plain batch; inference mode caches nothing.
            acts = _Activations(
                step.layer.forward(acts.value), num_networks=k, shared=acts.shared
            )
    value = acts.value
    if acts.shared:
        value = np.broadcast_to(value[None], (k,) + value.shape)
    else:
        value = value.reshape(k, n, *value.shape[1:])
    if value.ndim != 3:
        raise ShapeError(
            f"stacked forward expected (K, N, classes) logits, got shape {value.shape}"
        )
    return value


def stacked_predict(
    networks: Sequence[Sequential],
    inputs: np.ndarray,
    *,
    batch_size: Optional[int] = None,
) -> np.ndarray:
    """Inference logits ``(K, N, classes)`` of K same-architecture networks.

    The networks must share an :func:`architecture_signature`; use
    :func:`batched_evaluate` when they may differ.  All networks are put in
    inference mode for the pass and restored afterwards.
    """
    if not networks:
        raise LayerError("stacked_predict needs at least one network")
    signatures = {architecture_signature(network) for network in networks}
    if len(signatures) != 1:
        raise LayerError(
            "stacked_predict requires identical architectures; "
            "use batched_evaluate to group mixed networks"
        )
    saved = [[layer.training for layer in network] for network in networks]
    for network in networks:
        network.eval()
    try:
        steps = _compile(networks)
        k = len(networks)
        if batch_size is None:
            return _stacked_forward(steps, inputs, k)
        chunks = [
            _stacked_forward(steps, inputs[start : start + batch_size], k)
            for start in range(0, inputs.shape[0], batch_size)
        ]
        return np.concatenate(chunks, axis=1)
    finally:
        for network, flags in zip(networks, saved):
            for layer, flag in zip(network, flags):
                layer.training = flag


def batched_evaluate(
    networks: Sequence[Sequential],
    inputs: np.ndarray,
    targets: np.ndarray,
    *,
    batch_size: int = 256,
) -> List[float]:
    """Test accuracy of every network, sharing work across identical ones.

    Networks are grouped by :func:`architecture_signature`; each group of two
    or more is evaluated with :func:`stacked_predict` (im2col extracted once
    per group, stacked matmuls), singletons with the ordinary per-network
    ``predict``.  Results are returned in input order.
    """
    if not networks:
        return []
    groups: Dict[Tuple, List[int]] = {}
    for index, network in enumerate(networks):
        groups.setdefault(architecture_signature(network), []).append(index)
    accuracies: List[Optional[float]] = [None] * len(networks)
    for indices in groups.values():
        if len(indices) == 1:
            logits = networks[indices[0]].predict(inputs, batch_size=batch_size)
            accuracies[indices[0]] = accuracy(logits, targets)
            continue
        stacked = stacked_predict(
            [networks[i] for i in indices], inputs, batch_size=batch_size
        )
        for slot, index in enumerate(indices):
            accuracies[index] = accuracy(stacked[slot], targets)
    return [float(value) for value in accuracies]


# --------------------------------------------------------------------------
# Training-mode stacking: (K, ...) parameter slabs + stacked forward/backward
# --------------------------------------------------------------------------
class StackedParameter:
    """One parameter of K aligned networks as a ``(K, *shape)`` slab.

    The slab is the authoritative storage while a :class:`NetworkStack` is
    live: every point's ``Parameter.data`` and ``Parameter.grad`` is re-bound
    to a zero-copy view of the corresponding slab row, so any per-point code
    that reads or accumulates through the ``Parameter`` object operates on
    the slab directly.  All slab updates must therefore be **in place**
    (``out=``/augmented assignment) — re-binding ``self.data`` would orphan
    the per-point views.

    A point whose ``Parameter`` gets re-bound externally (mask installation
    re-binds ``data``; rank clipping replaces the factor arrays) is detected
    by :meth:`point_status` and either re-absorbed (:meth:`refresh_point`,
    same shape) or dropped from the slab (:meth:`drop_point`, new shape).
    """

    def __init__(self, parameters: Sequence[Parameter], name: str = ""):
        params = list(parameters)
        if not params:
            raise LayerError("StackedParameter needs at least one parameter")
        shapes = {p.data.shape for p in params}
        if len(shapes) != 1:
            raise ShapeError(
                f"cannot stack parameters with differing shapes: {sorted(shapes)}"
            )
        if len({p.trainable for p in params}) != 1:
            raise LayerError("cannot stack parameters with differing trainable flags")
        self.points: List[Parameter] = params
        self.name = name or params[0].name
        self.trainable = params[0].trainable
        self.data = np.stack([p.data for p in params])
        self.grad = np.stack([p.grad for p in params])
        self.mask: Optional[np.ndarray] = None
        if any(p.mask is not None for p in params):
            self.mask = np.stack(
                [
                    p.mask if p.mask is not None else np.ones(p.data.shape, dtype=bool)
                    for p in params
                ]
            )
        self._views: List[Tuple[np.ndarray, np.ndarray]] = []
        self._mask_refs: List[Optional[np.ndarray]] = []
        self._attach()

    # ----------------------------------------------------------- geometry
    @property
    def num_points(self) -> int:
        """Number of stacked points (the slab's leading dimension)."""
        return self.data.shape[0]

    @property
    def shape(self) -> Tuple[int, ...]:
        """Per-point parameter shape (without the stacking axis)."""
        return self.data.shape[1:]

    # ------------------------------------------------------------ aliasing
    def _attach(self) -> None:
        self._views = []
        self._mask_refs = []
        for k, param in enumerate(self.points):
            data_view = self.data[k]
            grad_view = self.grad[k]
            param.data = data_view
            param.grad = grad_view
            self._views.append((data_view, grad_view))
            self._mask_refs.append(param.mask)

    def point_status(self, k: int) -> str:
        """``"intact"``, ``"rebound"`` (same shape) or ``"diverged"`` (new shape)."""
        param = self.points[k]
        data_view, grad_view = self._views[k]
        if (
            param.data is data_view
            and param.grad is grad_view
            and param.mask is self._mask_refs[k]
        ):
            return "intact"
        if param.data.shape == self.shape:
            return "rebound"
        return "diverged"

    def refresh_point(self, k: int) -> None:
        """Re-absorb a point whose ``Parameter`` was re-bound with the same shape."""
        param = self.points[k]
        self.data[k] = param.data
        if param.grad.shape == self.shape:
            self.grad[k] = param.grad
        if param.mask is not None and self.mask is None:
            self.mask = np.ones(self.data.shape, dtype=bool)
        if self.mask is not None:
            self.mask[k] = True if param.mask is None else param.mask
        data_view = self.data[k]
        grad_view = self.grad[k]
        param.data = data_view
        param.grad = grad_view
        self._views[k] = (data_view, grad_view)
        self._mask_refs[k] = param.mask

    def release_point(self, k: int) -> None:
        """Give point ``k``'s ``Parameter`` its own arrays (undo the aliasing)."""
        param = self.points[k]
        data_view, grad_view = self._views[k]
        if param.data is data_view:
            param.data = self.data[k].copy()
        if param.grad is grad_view:
            param.grad = self.grad[k].copy()

    def drop_point(self, k: int) -> None:
        """Remove point ``k`` from the slab (releasing its arrays first)."""
        self.release_point(k)
        del self.points[k]
        self.data = np.delete(self.data, k, axis=0)
        self.grad = np.delete(self.grad, k, axis=0)
        if self.mask is not None:
            self.mask = np.delete(self.mask, k, axis=0)
        self._attach()

    def detach_all(self) -> None:
        """Release every point (used when lockstep training finishes)."""
        for k in range(len(self.points)):
            self.release_point(k)

    # ------------------------------------------------------------- updates
    def zero_grad(self) -> None:
        """Zero the gradient slab in place (the per-point views stay valid)."""
        self.grad[...] = 0.0

    def apply_mask(self) -> None:
        """Re-apply the stacked pruning mask to data and grad (no-op when unmasked).

        Unmasked points carry all-``True`` rows; multiplying by ``True`` is an
        exact identity, so the slab-wide multiply is bit-identical to the
        per-point ``Parameter.apply_mask`` (which skips unmasked parameters).
        """
        if self.mask is not None:
            self.data *= self.mask
            self.grad *= self.mask

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StackedParameter(name={self.name!r}, points={self.num_points}, shape={self.shape})"


class _TrainStep:
    """One compiled layer of the stacked training program."""

    __slots__ = (
        "kind",
        "layer",
        "weight",
        "bias",
        "u",
        "v",
        "x_shared",
        "x3",
        "mid3",
        "cols_shared",
        "cols3",
        "rows",
        "point_input_shape",
        "out_hw",
    )

    def __init__(self, kind: str, layer, *, weight=None, bias=None, u=None, v=None):
        self.kind = kind
        self.layer = layer
        self.weight = weight
        self.bias = bias
        self.u = u
        self.v = v
        self.release()

    def release(self) -> None:
        """Drop the per-iteration backward context."""
        self.x_shared = None
        self.x3 = None
        self.mid3 = None
        self.cols_shared = None
        self.cols3 = None
        self.rows = None
        self.point_input_shape = None
        self.out_hw = None

    def stacked_parameters(self) -> List[StackedParameter]:
        return [sp for sp in (self.weight, self.u, self.v, self.bias) if sp is not None]


class NetworkStack:
    """K same-architecture networks stacked for lockstep training.

    Gathers every parameter into a :class:`StackedParameter` slab (re-binding
    the per-point ``Parameter`` objects to slab views) and compiles a stacked
    forward/backward program over the shared architecture.  The program is
    bit-identical, per point, to K independent ``Sequential`` forward/backward
    passes: weighted layers run one batched matmul against the ``(K, …)``
    slabs with exactly the per-network operand strides, parameter-free layers
    process the ``(K·N, …)`` super-batch (their math is per-sample), and the
    backward pass stops at the first weighted layer (whose input gradient no
    parameter consumes).

    Layers with stochastic training behaviour (``Dropout`` with a positive
    rate) cannot be stacked — each serial network would consume its own
    random stream — and raise :class:`~repro.exceptions.LayerError`; such
    points belong on the serial path.
    """

    def __init__(self, networks: Sequence[Sequential]):
        nets = list(networks)
        if not nets:
            raise LayerError("NetworkStack needs at least one network")
        signatures = {architecture_signature(network) for network in nets}
        if len(signatures) != 1:
            raise LayerError(
                "lockstep stacking requires identical architectures; "
                "group networks by architecture_signature first"
            )
        for network in nets:
            for layer in network:
                if isinstance(layer, Dropout) and layer.rate > 0.0:
                    raise LayerError(
                        "lockstep training cannot stack active Dropout layers "
                        "(each network consumes its own noise stream); "
                        "train such points serially"
                    )
        self.networks = nets
        self._steps: List[_TrainStep] = []
        self.parameters: List[StackedParameter] = []
        self._compile()
        self.first_weighted: Optional[int] = next(
            (i for i, step in enumerate(self._steps) if step.kind != "layer"), None
        )
        self._param_index: Dict[int, Tuple[StackedParameter, int]] = {}
        self._rebuild_index()

    # ------------------------------------------------------------- compile
    def _stack_param(self, position: int, key: str) -> StackedParameter:
        params = [network[position].parameters()[key] for network in self.networks]
        sp = StackedParameter(params, name=params[0].name)
        self.parameters.append(sp)
        return sp

    def _maybe_bias(self, position: int) -> Optional[StackedParameter]:
        layer0 = self.networks[0][position]
        if getattr(layer0, "bias", None) is None:
            return None
        return self._stack_param(position, "bias")

    def _compile(self) -> None:
        for position, layer0 in enumerate(self.networks[0]):
            if isinstance(layer0, LowRankConv2D):
                step = _TrainStep(
                    "lowrank_conv",
                    layer0,
                    u=self._stack_param(position, "u"),
                    v=self._stack_param(position, "v"),
                    bias=self._maybe_bias(position),
                )
            elif isinstance(layer0, LowRankLinear):
                step = _TrainStep(
                    "lowrank_dense",
                    layer0,
                    u=self._stack_param(position, "u"),
                    v=self._stack_param(position, "v"),
                    bias=self._maybe_bias(position),
                )
            elif isinstance(layer0, Conv2D):
                step = _TrainStep(
                    "conv",
                    layer0,
                    weight=self._stack_param(position, "weight"),
                    bias=self._maybe_bias(position),
                )
            elif isinstance(layer0, Linear):
                step = _TrainStep(
                    "dense",
                    layer0,
                    weight=self._stack_param(position, "weight"),
                    bias=self._maybe_bias(position),
                )
            elif layer0.parameters():
                raise LayerError(
                    f"cannot stack layer {layer0.name!r} of type "
                    f"{type(layer0).__name__}: it carries parameters the "
                    "lockstep program does not know how to train"
                )
            else:
                step = _TrainStep("layer", layer0)
            self._steps.append(step)

    def _rebuild_index(self) -> None:
        self._param_index = {
            id(param): (sp, k)
            for sp in self.parameters
            for k, param in enumerate(sp.points)
        }

    # ------------------------------------------------------------ plumbing
    @property
    def num_points(self) -> int:
        """Number of networks still riding the stack."""
        return len(self.networks)

    def slab_pair(self, param: Parameter) -> Tuple[StackedParameter, int]:
        """The ``(slab, point index)`` a per-point ``Parameter`` belongs to."""
        try:
            return self._param_index[id(param)]
        except KeyError:
            raise LayerError(
                f"parameter {param.name!r} is not part of this NetworkStack"
            ) from None

    def zero_grad(self) -> None:
        """Zero every gradient slab in place."""
        for sp in self.parameters:
            sp.zero_grad()

    def train(self) -> None:
        """Put every stacked network in training mode."""
        for network in self.networks:
            network.train()

    def scan_point(self, k: int) -> str:
        """Aggregate :meth:`StackedParameter.point_status` over all slabs."""
        status = "intact"
        for sp in self.parameters:
            point = sp.point_status(k)
            if point == "diverged":
                return "diverged"
            if point == "rebound":
                status = "rebound"
        return status

    def refresh_point(self, k: int) -> None:
        """Re-absorb point ``k`` after an in-place structural change (e.g. masks)."""
        for sp in self.parameters:
            sp.refresh_point(k)
        self._rebuild_index()

    def drop_point(self, k: int) -> Sequential:
        """Remove point ``k`` from the stack, returning its (released) network."""
        network = self.networks.pop(k)
        for sp in self.parameters:
            sp.drop_point(k)
        self._rebuild_index()
        return network

    def detach_all(self) -> None:
        """Release every network's parameters (end of lockstep training)."""
        for sp in self.parameters:
            sp.detach_all()

    # -------------------------------------------------------------- forward
    def forward(self, inputs: Union[np.ndarray, Sequence[np.ndarray]]) -> np.ndarray:
        """Stacked training forward pass; returns ``(K, N, classes)`` logits.

        ``inputs`` is a single batch shared by every point (shared data
        stream: im2col and the pre-weighted prefix run once) or a sequence of
        K per-point batches of identical shape (independent streams: the
        super-batch is stacked from the start).
        """
        k = self.num_points
        if isinstance(inputs, np.ndarray):
            value = as_float(inputs)
            shared = True
            rows = value.shape[0]
        else:
            batches = [as_float(batch) for batch in inputs]
            if len(batches) != k:
                raise ShapeError(
                    f"expected {k} per-point batches, got {len(batches)}"
                )
            if len({batch.shape for batch in batches}) != 1:
                raise ShapeError("per-point batches must share one shape")
            value = np.concatenate(batches, axis=0)
            shared = False
            rows = batches[0].shape[0]
        for step in self._steps:
            if step.kind == "layer":
                value = step.layer.forward(value)
            elif step.kind in ("conv", "lowrank_conv"):
                value, shared = self._forward_conv(step, value, shared)
            else:
                value, shared = self._forward_dense(step, value, shared)
        if shared:
            # Degenerate: no weighted layer at all; every point agrees.
            value = np.repeat(value[None], k, axis=0).reshape(k * rows, *value.shape[1:])
        logits = value.reshape(k, rows, *value.shape[1:])
        if logits.ndim != 3:
            raise ShapeError(
                f"stacked training forward expected (K, N, classes) logits, "
                f"got shape {logits.shape}"
            )
        return logits

    def _forward_dense(self, step: _TrainStep, value, shared):
        k = self.num_points
        lowrank = step.kind == "lowrank_dense"
        if shared:
            x_ref = value
            step.x_shared = value
            step.x3 = None
        else:
            rows = value.shape[0] // k
            x_ref = value.reshape(k, rows, value.shape[1])
            step.x_shared = None
            step.x3 = x_ref
        if lowrank:
            mid3 = np.matmul(x_ref, step.v.data)  # (K, rows, rank)
            step.mid3 = mid3
            out3 = np.matmul(mid3, step.u.data.transpose(0, 2, 1))
        else:
            out3 = np.matmul(x_ref, step.weight.data.transpose(0, 2, 1))
        if step.bias is not None:
            out3 = out3 + step.bias.data[:, None, :]
        step.rows = out3.shape[1]
        return out3.reshape(k * out3.shape[1], out3.shape[2]), False

    def _forward_conv(self, step: _TrainStep, value, shared):
        k = self.num_points
        layer = step.layer
        lowrank = step.kind == "lowrank_conv"
        n = value.shape[0] if shared else value.shape[0] // k
        cols, out_h, out_w = F.im2col(
            value, layer.kernel_size, layer.kernel_size, layer.stride, layer.padding
        )
        rows = n * out_h * out_w
        if shared:
            cols_ref = cols
            step.cols_shared = cols
            step.cols3 = None
        else:
            cols_ref = cols.reshape(k, rows, cols.shape[1])
            step.cols_shared = None
            step.cols3 = cols_ref
        if lowrank:
            mid3 = np.matmul(cols_ref, step.v.data)  # (K, rows, rank)
            step.mid3 = mid3
            out3 = np.matmul(mid3, step.u.data.transpose(0, 2, 1))
        else:
            weight_matrix = step.weight.data.reshape(k, layer.out_channels, layer.fan_in)
            out3 = np.matmul(cols_ref, weight_matrix.transpose(0, 2, 1))
        if step.bias is not None:
            out3 = out3 + step.bias.data[:, None, :]
        step.rows = rows
        step.point_input_shape = (n,) + value.shape[1:]
        step.out_hw = (out_h, out_w)
        value = out3.reshape(k * n, out_h, out_w, layer.out_channels).transpose(
            0, 3, 1, 2
        )
        return value, False

    # ------------------------------------------------------------- backward
    def backward(self, grad_logits: np.ndarray) -> None:
        """Stacked backward pass accumulating into the gradient slabs.

        ``grad_logits`` is the ``(K·N, classes)`` super-batch of per-point
        loss gradients (point-major).  The pass stops at the first weighted
        layer: its input gradient — and the backward of any parameter-free
        prefix — feeds no parameter, so skipping it leaves every weight
        gradient bit-identical to the serial computation while saving the
        most expensive ``col2im`` scatter of the network.
        """
        if self.first_weighted is None:
            return
        grad = grad_logits
        for index in range(len(self._steps) - 1, self.first_weighted - 1, -1):
            step = self._steps[index]
            need_input = index != self.first_weighted
            if step.kind == "layer":
                grad = step.layer.backward(grad)
            elif step.kind in ("conv", "lowrank_conv"):
                grad = self._backward_conv(step, grad, need_input)
            else:
                grad = self._backward_dense(step, grad, need_input)
        # The skipped prefix never consumes its forward caches; drop them.
        for index in range(self.first_weighted):
            if self._steps[index].kind == "layer":
                self._steps[index].layer.release_caches()

    def _backward_dense(self, step: _TrainStep, grad, need_input):
        k = self.num_points
        g3 = grad.reshape(k, step.rows, grad.shape[1])
        x_ref = step.x_shared if step.x3 is None else step.x3
        if step.kind == "lowrank_dense":
            step.u.grad += np.matmul(g3.transpose(0, 2, 1), step.mid3)
            gmid3 = np.matmul(g3, step.u.data)
            if step.x3 is None:
                step.v.grad += np.matmul(x_ref.T, gmid3)
            else:
                step.v.grad += np.matmul(x_ref.transpose(0, 2, 1), gmid3)
            grad_in3 = (
                np.matmul(gmid3, step.v.data.transpose(0, 2, 1)) if need_input else None
            )
        else:
            # Shared x broadcasts against the K gradient slices.
            step.weight.grad += np.matmul(g3.transpose(0, 2, 1), x_ref)
            grad_in3 = np.matmul(g3, step.weight.data) if need_input else None
        if step.bias is not None:
            step.bias.grad += g3.sum(axis=1)
        step.release()
        if grad_in3 is None:
            return None
        return grad_in3.reshape(k * grad_in3.shape[1], grad_in3.shape[2])

    def _backward_conv(self, step: _TrainStep, grad, need_input):
        k = self.num_points
        layer = step.layer
        n, c, h, w = step.point_input_shape
        out_h, out_w = step.out_hw
        expected = (k * n, layer.out_channels, out_h, out_w)
        if grad.shape != expected:
            raise ShapeError(
                f"{layer.name}: expected stacked grad of shape {expected}, "
                f"got {grad.shape}"
            )
        grad_mat = grad.transpose(0, 2, 3, 1).reshape(-1, layer.out_channels)
        gm3 = grad_mat.reshape(k, step.rows, layer.out_channels)
        cols_ref = step.cols_shared if step.cols3 is None else step.cols3
        cols_t = cols_ref.T if step.cols3 is None else step.cols3.transpose(0, 2, 1)
        if step.kind == "lowrank_conv":
            step.u.grad += np.matmul(gm3.transpose(0, 2, 1), step.mid3)
            gmid3 = np.matmul(gm3, step.u.data)
            step.v.grad += np.matmul(cols_t, gmid3)
        else:
            gw3 = np.matmul(gm3.transpose(0, 2, 1), cols_ref)  # (K, out, fan)
            step.weight.grad += gw3.reshape(step.weight.data.shape)
        if step.bias is not None:
            step.bias.grad += gm3.sum(axis=1)
        grad_input = None
        if need_input:
            kernel = layer.kernel_size
            if step.kind == "lowrank_conv":
                back_mats = gmid3
                weight_stack = step.v.data.transpose(0, 2, 1)  # (K, rank, fan)
            else:
                back_mats = gm3
                weight_stack = step.weight.data.reshape(
                    k, layer.out_channels, layer.fan_in
                )
            if layer.stride >= kernel or c < F.FUSED_BACKWARD_MIN_CHANNELS:
                # The serial kernel would take the unfused path
                # (col2im(grad_mat @ W)); its col2im scatter is per-sample, so
                # all K points fold in one stacked matmul + one super-batch
                # col2im, bit-identical per point slice.
                grad_cols = np.matmul(back_mats, weight_stack)
                grad_input = F.col2im(
                    grad_cols.reshape(k * step.rows, grad_cols.shape[2]),
                    (k * n, c, h, w),
                    kernel,
                    kernel,
                    layer.stride,
                    layer.padding,
                )
            else:
                # The fused per-offset path multiplies each point's own weight
                # slices; replicate it per point with identical operands.
                grad_input = np.empty((k * n, c, h, w), dtype=grad_mat.dtype)
                for slot in range(k):
                    grad_input[slot * n : (slot + 1) * n] = F.conv_backward_input(
                        back_mats[slot],
                        weight_stack[slot],
                        (n, c, h, w),
                        kernel,
                        kernel,
                        layer.stride,
                        layer.padding,
                    )
        step.release()
        return grad_input
