"""Weight initialization schemes.

Initializers are simple callables ``(shape, fan_in, fan_out, rng) -> ndarray``
wrapped in small classes so they can be named in configuration, compared in
tests and re-used across :class:`~repro.nn.layers.linear.Linear` and
:class:`~repro.nn.layers.conv.Conv2D`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.dtype import default_dtype
from repro.utils.rng import RngLike, as_rng


class Initializer:
    """Base class: subclasses implement :meth:`sample`."""

    def __call__(
        self, shape: Tuple[int, ...], fan_in: int, fan_out: int, rng: RngLike = None
    ) -> np.ndarray:
        rng = as_rng(rng)
        if fan_in < 1 or fan_out < 1:
            raise ValueError(f"fan_in/fan_out must be >= 1, got {fan_in}/{fan_out}")
        return self.sample(shape, fan_in, fan_out, rng)

    def sample(
        self, shape: Tuple[int, ...], fan_in: int, fan_out: int, rng: np.random.Generator
    ) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class Zeros(Initializer):
    """All-zero initialization (used for biases)."""

    def sample(self, shape, fan_in, fan_out, rng):
        return np.zeros(shape, dtype=default_dtype())


class Constant(Initializer):
    """Constant-value initialization."""

    def __init__(self, value: float = 0.0):
        self.value = float(value)

    def sample(self, shape, fan_in, fan_out, rng):
        return np.full(shape, self.value, dtype=default_dtype())


class NormalInit(Initializer):
    """Gaussian initialization with fixed standard deviation."""

    def __init__(self, std: float = 0.01, mean: float = 0.0):
        if std <= 0:
            raise ValueError(f"std must be > 0, got {std}")
        self.std = float(std)
        self.mean = float(mean)

    def sample(self, shape, fan_in, fan_out, rng):
        return rng.normal(self.mean, self.std, size=shape)


class UniformInit(Initializer):
    """Uniform initialization on ``[-limit, limit]``."""

    def __init__(self, limit: float = 0.05):
        if limit <= 0:
            raise ValueError(f"limit must be > 0, got {limit}")
        self.limit = float(limit)

    def sample(self, shape, fan_in, fan_out, rng):
        return rng.uniform(-self.limit, self.limit, size=shape)


class XavierUniform(Initializer):
    """Glorot/Xavier uniform initialization: ``U(-sqrt(6/(fan_in+fan_out)), +)``."""

    def sample(self, shape, fan_in, fan_out, rng):
        limit = np.sqrt(6.0 / (fan_in + fan_out))
        return rng.uniform(-limit, limit, size=shape)


class XavierNormal(Initializer):
    """Glorot/Xavier normal initialization: ``N(0, 2/(fan_in+fan_out))``."""

    def sample(self, shape, fan_in, fan_out, rng):
        std = np.sqrt(2.0 / (fan_in + fan_out))
        return rng.normal(0.0, std, size=shape)


class HeNormal(Initializer):
    """He/Kaiming normal initialization: ``N(0, 2/fan_in)`` for ReLU networks."""

    def sample(self, shape, fan_in, fan_out, rng):
        std = np.sqrt(2.0 / fan_in)
        return rng.normal(0.0, std, size=shape)


class HeUniform(Initializer):
    """He/Kaiming uniform initialization: ``U(-sqrt(6/fan_in), +sqrt(6/fan_in))``."""

    def sample(self, shape, fan_in, fan_out, rng):
        limit = np.sqrt(6.0 / fan_in)
        return rng.uniform(-limit, limit, size=shape)


class LecunNormal(Initializer):
    """LeCun normal initialization: ``N(0, 1/fan_in)``."""

    def sample(self, shape, fan_in, fan_out, rng):
        std = np.sqrt(1.0 / fan_in)
        return rng.normal(0.0, std, size=shape)


_REGISTRY = {
    "zeros": Zeros,
    "constant": Constant,
    "normal": NormalInit,
    "uniform": UniformInit,
    "xavier_uniform": XavierUniform,
    "xavier_normal": XavierNormal,
    "glorot_uniform": XavierUniform,
    "glorot_normal": XavierNormal,
    "he_normal": HeNormal,
    "he_uniform": HeUniform,
    "kaiming_normal": HeNormal,
    "kaiming_uniform": HeUniform,
    "lecun_normal": LecunNormal,
}


def get_initializer(name_or_init) -> Initializer:
    """Resolve an initializer from an instance or a registry name."""
    if isinstance(name_or_init, Initializer):
        return name_or_init
    if isinstance(name_or_init, str):
        key = name_or_init.lower()
        if key not in _REGISTRY:
            raise ValueError(
                f"unknown initializer {name_or_init!r}; expected one of {sorted(_REGISTRY)}"
            )
        return _REGISTRY[key]()
    raise TypeError(f"expected an Initializer or str, got {type(name_or_init).__name__}")


def available_initializers() -> list[str]:
    """Return the sorted list of registry names accepted by :func:`get_initializer`."""
    return sorted(_REGISTRY)
