#!/usr/bin/env bash
# Lightweight CI for the repo.
#
#   ci/run_ci.sh            # tier-1: full test + benchmark suite (includes
#                           # the kernel parity / engine regression tests and
#                           # the 2-worker sweep parity tests)
#   ci/run_ci.sh --quick    # engine regression tests only (fast iteration)
#   ci/run_ci.sh --bench    # tier-1 plus BENCH_kernels.json,
#                           # BENCH_sweeps.json and BENCH_lockstep.json
#                           # data points
#
# Keeps to the stock toolchain: python + pytest only.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

# test_sweep_engine.py runs the serial-vs-parallel parity tests with a
# 2-worker process pool, so every CI invocation exercises the fan-out path.
ENGINE_TESTS=(
  tests/test_kernel_parity.py
  tests/test_cache_release.py
  tests/test_dtype_policy.py
  tests/test_mapper_cache.py
  tests/test_sweep_regression.py
  tests/test_sweep_engine.py
  tests/test_lockstep.py
  tests/test_optim.py
)

if [[ "${1:-}" == "--quick" ]]; then
  echo "== quick: kernel parity and engine regression tests (2-worker sweep parity included) =="
  python -m pytest -x -q "${ENGINE_TESTS[@]}"
else
  echo "== tier-1: full test + benchmark suite (kernel + sweep parity included) =="
  python -m pytest -x -q
fi

if [[ "${1:-}" == "--bench" ]]; then
  echo "== kernel + sweep + lockstep benchmark trajectories =="
  python benchmarks/run_benchmarks.py --check
fi

echo "CI OK"
