#!/usr/bin/env bash
# Lightweight CI for the repo.
#
#   ci/run_ci.sh            # tier-1: full test + benchmark suite (includes
#                           # the kernel parity / engine regression tests,
#                           # the 2-worker sweep parity tests, the
#                           # spec/store/CLI/deprecation-shim tests, and the
#                           # crossbar-simulator parity/eval tests) plus
#                           # `python -m repro` CLI smoke jobs
#   ci/run_ci.sh --quick    # engine regression tests only (fast iteration)
#   ci/run_ci.sh --bench    # tier-1 plus one BENCH_<suite>.json data point
#                           # per registered suite (suite names come from the
#                           # SUITES registry in benchmarks/run_benchmarks.py
#                           # via --list; nothing is hard-coded here)
#
# Keeps to the stock toolchain: python + pytest only.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

# test_sweep_engine.py runs the serial-vs-parallel parity tests with a
# 2-worker process pool, so every CI invocation exercises the fan-out path.
ENGINE_TESTS=(
  tests/test_kernel_parity.py
  tests/test_cache_release.py
  tests/test_dtype_policy.py
  tests/test_mapper_cache.py
  tests/test_routing_cache.py
  tests/test_sweep_regression.py
  tests/test_sweep_engine.py
  tests/test_lockstep.py
  tests/test_optim.py
  tests/test_spec.py
  tests/test_run_store.py
  tests/test_cli.py
  tests/test_shims.py
  tests/test_hardware_sim.py
  tests/test_hardware_eval.py
  tests/test_analysis.py
  tests/test_faultinject.py
  tests/test_resilience.py
  tests/test_serving.py
  tests/test_graph.py
  tests/test_scheduler.py
  tests/test_store_concurrency.py
  tests/test_obs.py
  tests/test_obs_integration.py
)

# Contract linter gate: the tree must be free of determinism/dtype/parity/
# fingerprint violations (see src/repro/analysis/README.md).  Runs in every
# mode — it is the cheapest check in the pipeline (~1 s).
run_lint() {
  echo "== contract linter: python -m repro lint =="
  python -m repro lint
}

if [[ "${1:-}" == "--quick" ]]; then
  run_lint
  echo "== quick: kernel parity and engine regression tests (2-worker sweep parity included) =="
  python -m pytest -x -q "${ENGINE_TESTS[@]}"
else
  run_lint
  echo "== tier-1: full test + benchmark suite (kernel + sweep parity included) =="
  python -m pytest -x -q

  echo "== CLI smoke: spec -> run -> artifact -> resume -> show/compare =="
  CLI_STORE="$(mktemp -d)"
  trap 'rm -rf "$CLI_STORE"' EXIT
  python -m repro run table1 --scale tiny --workers 1 --store "$CLI_STORE"
  # Re-running the identical spec must resume the complete artifact: zero new
  # training ("0 computed" in the summary).
  RESUME_OUT="$(python -m repro run table1 --scale tiny --workers 1 --store "$CLI_STORE" --quiet)"
  echo "$RESUME_OUT"
  grep -q "0 computed, 1 reused" <<< "$RESUME_OUT"
  python -m repro show table1 --store "$CLI_STORE" > /dev/null
  python -m repro compare table1 table1 --store "$CLI_STORE" > /dev/null
  python -m repro list --store "$CLI_STORE" > /dev/null

  echo "== CLI chaos smoke: injected worker kill -> partial(3) -> resume(0) =="
  # A worker that dies on every attempt of point 0 must leave a partial
  # artifact (exit 3) whose surviving point resumes for free: the rerun
  # retrains only the killed point ("1 computed, 1 reused"), and a third run
  # is a pure artifact read ("0 computed").
  CHAOS_FAULTS='[{"site": "point", "kind": "kill", "index": 0, "attempts": [1, 2, 3]}]'
  CHAOS_ARGS=(run figure6 --workload mlp --scale tiny --grid 0.05 0.3
              --workers 2 --store "$CLI_STORE" --quiet)
  set +e
  python -m repro "${CHAOS_ARGS[@]}" --faults "$CHAOS_FAULTS"
  CHAOS_RC=$?
  set -e
  [[ "$CHAOS_RC" == 3 ]] || { echo "expected exit 3 (partial), got $CHAOS_RC"; exit 1; }
  HEAL_OUT="$(python -m repro "${CHAOS_ARGS[@]}")"
  echo "$HEAL_OUT"
  grep -q "1 computed, 1 reused" <<< "$HEAL_OUT"
  REREAD_OUT="$(python -m repro "${CHAOS_ARGS[@]}")"
  grep -q "0 computed" <<< "$REREAD_OUT"

  echo "== CLI smoke: device-level hardware evaluation (figure_hw) =="
  python -m repro run figure_hw --workload mlp --scale tiny --store "$CLI_STORE" --quiet
  python -m repro run figure_hw_baseline --workload mlp --scale tiny --store "$CLI_STORE" --quiet
  # The compare view must render the per-corner accuracy deltas between the
  # dense baseline and the Scissor-compressed run.  (Capture instead of
  # piping into `grep -q`, which would close the pipe mid-write.)
  HW_COMPARE="$(python -m repro compare figure_hw_baseline figure_hw --store "$CLI_STORE")"
  grep -q "simulated hardware accuracy" <<< "$HW_COMPARE"

  echo "== serving chaos smoke: injected serve-infer faults -> breaker opens -> degraded -> recovery -> drain =="
  # The drill injects consecutive serve-infer faults, asserts the circuit
  # breaker opens, that responses flip to the flagged ideal-corner fallback
  # while it is open, that the half-open probe recovers, and that the drain
  # accounts for every request.  The greppable lines are the drill's own
  # evidence trail; exit 0 means every internal assertion held.
  DRILL_OUT="$(python -m repro serve-bench --drill)"
  echo "$DRILL_OUT"
  grep -q "circuit opened" <<< "$DRILL_OUT"
  grep -q "degraded responses" <<< "$DRILL_OUT"
  grep -q "recovered: state=healthy" <<< "$DRILL_OUT"
  grep -q "drained" <<< "$DRILL_OUT"

  echo "== scheduler smoke: submit x2 -> daemon interleaves -> kill -9 -> cancel -> drain recovers =="
  # Two specs are queued, the daemon runs them concurrently (node events must
  # switch jobs mid-run), then the daemon is killed hard mid-flight.  One job
  # is cancelled while stuck "running"; a --drain restart must requeue both,
  # honor the cancel, and finish the survivor from its journaled progress.
  SCHED_STORE="$CLI_STORE/sched"
  SUBMIT_ARGS=(figure6 --workload mlp --scale tiny
               --grid 0.02 0.05 0.1 0.2 0.3 0.5
               --store "$SCHED_STORE" --json)
  JOB_A="$(python -m repro submit "${SUBMIT_ARGS[@]}" \
           | python -c 'import json, sys; print(json.load(sys.stdin)["job_id"])')"
  JOB_B="$(python -m repro submit "${SUBMIT_ARGS[@]}" --seed 7 \
           | python -c 'import json, sys; print(json.load(sys.stdin)["job_id"])')"
  # The daemon (and only the daemon) runs with a benign injected 0.5 s hang
  # per point, so each 6-point job stays in flight for seconds — long enough
  # to observe interleaving and to kill -9 it provably mid-run.
  REPRO_FAULTS='[{"site": "point", "kind": "hang", "seconds": 0.5}]' \
    python -m repro serve-jobs --store "$SCHED_STORE" --workers 2 --poll 0.1 \
    > "$CLI_STORE/daemon.log" 2>&1 &
  DAEMON_PID=$!
  # Wait until both jobs have a node in flight, then kill the daemon hard.
  python - "$SCHED_STORE" "$JOB_A" "$JOB_B" <<'PY'
import sys, time
from repro.scheduler import JobQueue
from repro.scheduler.daemon import default_queue_root

queue = JobQueue(default_queue_root(sys.argv[1]))
want = {sys.argv[2], sys.argv[3]}
deadline = time.monotonic() + 120
while time.monotonic() < deadline:
    started = {e["job"] for e in queue.events() if e["event"] == "node-start"}
    if want <= started:
        sys.exit(0)
    time.sleep(0.2)
sys.exit("daemon never started a node for both jobs")
PY
  kill -9 "$DAEMON_PID"
  wait "$DAEMON_PID" 2>/dev/null || true
  python -m repro cancel "$JOB_A" --store "$SCHED_STORE"
  python -m repro serve-jobs --store "$SCHED_STORE" --workers 2 --poll 0.1 --drain
  python -m repro status --store "$SCHED_STORE" --json | python -c '
import json, sys
rows = {row["job_id"]: row for row in json.load(sys.stdin)}
a, b = sys.argv[1], sys.argv[2]
assert rows[a]["state"] == "cancelled", rows[a]
assert rows[b]["state"] == "done", rows[b]
assert rows[b]["artifact"]["complete"] is True, rows[b]
print(f"status OK: cancelled job stayed cancelled, survivor done")
' "$JOB_A" "$JOB_B"
  python - "$SCHED_STORE" <<'PY'
import sys
from repro.scheduler import JobQueue
from repro.scheduler.daemon import default_queue_root

queue = JobQueue(default_queue_root(sys.argv[1]))
nodes = [e["job"] for e in queue.events() if e["event"].startswith("node-")]
switches = sum(1 for x, y in zip(nodes, nodes[1:]) if x != y)
assert switches >= 2, f"jobs never interleaved: {nodes}"
requeued = [e for e in queue.events() if e["event"] == "job-requeued"]
assert requeued, "kill -9 recovery never requeued the in-flight jobs"
print(f"interleave OK: {len(nodes)} node events, {switches} job switches, "
      f"{len(requeued)} requeued after crash")
PY
  python -m repro watch "$JOB_B" --store "$SCHED_STORE" --timeout 30 > /dev/null

  echo "== observability smoke: serve-bench --metrics -> accounting + exact p99 agreement -> traced scheduler job =="
  # The exported metrics snapshot must satisfy the serving accounting
  # invariant, and its queue-wait percentiles must agree *exactly* with a
  # histogram recomputed offline from traces.jsonl (same nearest-rank
  # percentile over the same observations).
  OBS_STORE="$CLI_STORE/obs-smoke"
  python -m repro serve-bench --requests 50 --metrics --store "$OBS_STORE" > /dev/null
  python -m repro metrics --store "$OBS_STORE" > /dev/null
  python - "$OBS_STORE" <<'PY'
import sys
from repro.obs import (
    load_metrics_snapshot, metrics_path, obs_root, percentile, read_trace_file,
    traces_path,
)

root = obs_root(sys.argv[1])
snap = load_metrics_snapshot(metrics_path(root))
counters = snap["counters"]
rejected = sum(v for k, v in counters.items() if k.startswith("serving.rejected."))
assert counters["serving.submitted"] == counters["serving.completed"] + rejected, counters
waits = [
    r["queue_wait_s"]
    for r in read_trace_file(traces_path(root))
    if r.get("kind") == "request" and r.get("queue_wait_s") is not None
]
hist = snap["histograms"]["serving.queue_wait_s"]
assert hist["count"] == len(waits) > 0, (hist["count"], len(waits))
for q, key in ((50, "p50"), (99, "p99")):
    assert hist[key] == percentile(waits, q), (key, hist[key], percentile(waits, q))
print(f"observability OK: {counters['serving.submitted']} submitted accounted, "
      f"p99 queue wait {hist['p99']*1000:.3f} ms agrees with traces.jsonl")
PY
  # The chaos drill under tracing must show the whole fault -> shed ->
  # degrade -> recover arc: degraded responses plus every breaker state.
  DRILL_STORE="$CLI_STORE/obs-drill"
  python -m repro serve-bench --drill --metrics --store "$DRILL_STORE" > /dev/null
  python -m repro trace --store "$DRILL_STORE" --json | python -c '
import json, sys
summary = json.load(sys.stdin)["summary"]["requests"]
assert summary["degraded"] > 0, summary
assert {"closed", "open", "half-open"} <= set(summary["breaker_states"]), summary
print("drill trace OK: %d degraded, breaker states %s"
      % (summary["degraded"], sorted(summary["breaker_states"])))
'
  # A traced scheduler run: two queued jobs on one worker guarantee at
  # least one node dispatch observes a nonzero queue depth.
  python -m repro submit figure6 --workload mlp --scale tiny --grid 0.05 0.3 \
    --store "$OBS_STORE" --json > /dev/null
  python -m repro submit figure6 --workload mlp --scale tiny --grid 0.05 0.3 \
    --seed 7 --store "$OBS_STORE" --json > /dev/null
  python -m repro serve-jobs --store "$OBS_STORE" --workers 1 --poll 0.1 \
    --drain --metrics > /dev/null
  python -m repro trace --kind node --store "$OBS_STORE" --json | python -c '
import json, sys
summary = json.load(sys.stdin)["summary"]["nodes"]
assert summary["count"] > 0, summary
depths = summary["queue_depth_samples"]
assert depths and max(depths) > 0, depths
print("scheduler trace OK: %d node records, max queue depth %d"
      % (summary["count"], max(depths)))
'
fi

if [[ "${1:-}" == "--bench" ]]; then
  echo "== benchmark trajectories (suites from run_benchmarks.py --list) =="
  for suite in $(python benchmarks/run_benchmarks.py --list); do
    python benchmarks/run_benchmarks.py --suite "$suite" --check
  done
fi

echo "CI OK"
