#!/usr/bin/env bash
# Lightweight CI for the repo.
#
#   ci/run_ci.sh            # tier-1: full test + benchmark suite (includes
#                           # the kernel parity / engine regression tests,
#                           # the 2-worker sweep parity tests, the
#                           # spec/store/CLI/deprecation-shim tests, and the
#                           # crossbar-simulator parity/eval tests) plus
#                           # `python -m repro` CLI smoke jobs
#   ci/run_ci.sh --quick    # engine regression tests only (fast iteration)
#   ci/run_ci.sh --bench    # tier-1 plus one BENCH_<suite>.json data point
#                           # per registered suite (suite names come from the
#                           # SUITES registry in benchmarks/run_benchmarks.py
#                           # via --list; nothing is hard-coded here)
#
# Keeps to the stock toolchain: python + pytest only.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

# test_sweep_engine.py runs the serial-vs-parallel parity tests with a
# 2-worker process pool, so every CI invocation exercises the fan-out path.
ENGINE_TESTS=(
  tests/test_kernel_parity.py
  tests/test_cache_release.py
  tests/test_dtype_policy.py
  tests/test_mapper_cache.py
  tests/test_routing_cache.py
  tests/test_sweep_regression.py
  tests/test_sweep_engine.py
  tests/test_lockstep.py
  tests/test_optim.py
  tests/test_spec.py
  tests/test_run_store.py
  tests/test_cli.py
  tests/test_shims.py
  tests/test_hardware_sim.py
  tests/test_hardware_eval.py
  tests/test_analysis.py
  tests/test_faultinject.py
  tests/test_resilience.py
  tests/test_serving.py
)

# Contract linter gate: the tree must be free of determinism/dtype/parity/
# fingerprint violations (see src/repro/analysis/README.md).  Runs in every
# mode — it is the cheapest check in the pipeline (~1 s).
run_lint() {
  echo "== contract linter: python -m repro lint =="
  python -m repro lint
}

if [[ "${1:-}" == "--quick" ]]; then
  run_lint
  echo "== quick: kernel parity and engine regression tests (2-worker sweep parity included) =="
  python -m pytest -x -q "${ENGINE_TESTS[@]}"
else
  run_lint
  echo "== tier-1: full test + benchmark suite (kernel + sweep parity included) =="
  python -m pytest -x -q

  echo "== CLI smoke: spec -> run -> artifact -> resume -> show/compare =="
  CLI_STORE="$(mktemp -d)"
  trap 'rm -rf "$CLI_STORE"' EXIT
  python -m repro run table1 --scale tiny --workers 1 --store "$CLI_STORE"
  # Re-running the identical spec must resume the complete artifact: zero new
  # training ("0 computed" in the summary).
  RESUME_OUT="$(python -m repro run table1 --scale tiny --workers 1 --store "$CLI_STORE" --quiet)"
  echo "$RESUME_OUT"
  grep -q "0 computed, 1 reused" <<< "$RESUME_OUT"
  python -m repro show table1 --store "$CLI_STORE" > /dev/null
  python -m repro compare table1 table1 --store "$CLI_STORE" > /dev/null
  python -m repro list --store "$CLI_STORE" > /dev/null

  echo "== CLI chaos smoke: injected worker kill -> partial(3) -> resume(0) =="
  # A worker that dies on every attempt of point 0 must leave a partial
  # artifact (exit 3) whose surviving point resumes for free: the rerun
  # retrains only the killed point ("1 computed, 1 reused"), and a third run
  # is a pure artifact read ("0 computed").
  CHAOS_FAULTS='[{"site": "point", "kind": "kill", "index": 0, "attempts": [1, 2, 3]}]'
  CHAOS_ARGS=(run figure6 --workload mlp --scale tiny --grid 0.05 0.3
              --workers 2 --store "$CLI_STORE" --quiet)
  set +e
  python -m repro "${CHAOS_ARGS[@]}" --faults "$CHAOS_FAULTS"
  CHAOS_RC=$?
  set -e
  [[ "$CHAOS_RC" == 3 ]] || { echo "expected exit 3 (partial), got $CHAOS_RC"; exit 1; }
  HEAL_OUT="$(python -m repro "${CHAOS_ARGS[@]}")"
  echo "$HEAL_OUT"
  grep -q "1 computed, 1 reused" <<< "$HEAL_OUT"
  REREAD_OUT="$(python -m repro "${CHAOS_ARGS[@]}")"
  grep -q "0 computed" <<< "$REREAD_OUT"

  echo "== CLI smoke: device-level hardware evaluation (figure_hw) =="
  python -m repro run figure_hw --workload mlp --scale tiny --store "$CLI_STORE" --quiet
  python -m repro run figure_hw_baseline --workload mlp --scale tiny --store "$CLI_STORE" --quiet
  # The compare view must render the per-corner accuracy deltas between the
  # dense baseline and the Scissor-compressed run.  (Capture instead of
  # piping into `grep -q`, which would close the pipe mid-write.)
  HW_COMPARE="$(python -m repro compare figure_hw_baseline figure_hw --store "$CLI_STORE")"
  grep -q "simulated hardware accuracy" <<< "$HW_COMPARE"

  echo "== serving chaos smoke: injected serve-infer faults -> breaker opens -> degraded -> recovery -> drain =="
  # The drill injects consecutive serve-infer faults, asserts the circuit
  # breaker opens, that responses flip to the flagged ideal-corner fallback
  # while it is open, that the half-open probe recovers, and that the drain
  # accounts for every request.  The greppable lines are the drill's own
  # evidence trail; exit 0 means every internal assertion held.
  DRILL_OUT="$(python -m repro serve-bench --drill)"
  echo "$DRILL_OUT"
  grep -q "circuit opened" <<< "$DRILL_OUT"
  grep -q "degraded responses" <<< "$DRILL_OUT"
  grep -q "recovered: state=healthy" <<< "$DRILL_OUT"
  grep -q "drained" <<< "$DRILL_OUT"
fi

if [[ "${1:-}" == "--bench" ]]; then
  echo "== benchmark trajectories (suites from run_benchmarks.py --list) =="
  for suite in $(python benchmarks/run_benchmarks.py --list); do
    python benchmarks/run_benchmarks.py --suite "$suite" --check
  done
fi

echo "CI OK"
