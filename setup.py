"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can be installed in environments without the ``wheel`` package
(``python setup.py develop``) and for tooling that still expects a setup.py.
"""

from setuptools import setup

setup()
