"""Parity tests: vectorized kernels vs the preserved loop reference kernels.

The vectorized im2col/col2im and pooling paths must match the seed's
offset-loop implementations (kept in :mod:`repro.nn._reference`) to 1e-12 on
randomized shapes — in fact they are bit-identical everywhere the semantics
did not intentionally change (max pooling with ``padding > 0`` now pads with
``-inf`` instead of zero; see ``TestMaxPoolPaddingFix``).
"""

import numpy as np
import pytest

from repro.nn import _reference as ref
from repro.nn import functional as F
from repro.nn.layers import AvgPool2D, MaxPool2D

ATOL = 1e-12


def random_conv_cases(rng):
    """Randomized (shape, kernel, stride, padding) conv geometries."""
    cases = []
    for _ in range(12):
        n = int(rng.integers(1, 5))
        c = int(rng.integers(1, 4))
        kernel = int(rng.integers(1, 5))
        stride = int(rng.integers(1, 4))
        padding = int(rng.integers(0, 3))
        # Input large enough to give a positive output size.
        min_side = max(kernel - 2 * padding, 1)
        h = int(rng.integers(min_side + 2, min_side + 11))
        w = int(rng.integers(min_side + 2, min_side + 11))
        cases.append(((n, c, h, w), kernel, stride, padding))
    # Deterministic corner cases: 1x1 kernel, disjoint stride, kernel == input.
    cases.append(((2, 3, 8, 8), 1, 1, 0))
    cases.append(((2, 3, 8, 8), 2, 2, 0))
    cases.append(((1, 1, 4, 4), 4, 4, 0))
    cases.append(((2, 2, 5, 5), 3, 3, 1))
    return cases


class TestConvKernelParity:
    def test_im2col_matches_loop_reference(self, rng):
        for shape, kernel, stride, padding in random_conv_cases(rng):
            x = rng.standard_normal(shape)
            cols_new, oh_new, ow_new = F.im2col(x, kernel, kernel, stride, padding)
            cols_ref, oh_ref, ow_ref = ref.im2col_loop(x, kernel, kernel, stride, padding)
            assert (oh_new, ow_new) == (oh_ref, ow_ref)
            np.testing.assert_allclose(cols_new, cols_ref, atol=ATOL, rtol=0)

    def test_col2im_matches_loop_reference(self, rng):
        for shape, kernel, stride, padding in random_conv_cases(rng):
            x = rng.standard_normal(shape)
            cols, _, _ = F.im2col(x, kernel, kernel, stride, padding)
            grad_cols = rng.standard_normal(cols.shape)
            new = F.col2im(grad_cols, shape, kernel, kernel, stride, padding)
            expected = ref.col2im_loop(grad_cols, shape, kernel, kernel, stride, padding)
            np.testing.assert_allclose(new, expected, atol=ATOL, rtol=0)

    def test_rectangular_kernels(self, rng):
        x = rng.standard_normal((2, 3, 9, 11))
        for kh, kw in [(1, 3), (3, 1), (2, 4)]:
            cols_new, _, _ = F.im2col(x, kh, kw, 1, 1)
            cols_ref, _, _ = ref.im2col_loop(x, kh, kw, 1, 1)
            np.testing.assert_allclose(cols_new, cols_ref, atol=ATOL, rtol=0)
            g = rng.standard_normal(cols_new.shape)
            np.testing.assert_allclose(
                F.col2im(g, x.shape, kh, kw, 1, 1),
                ref.col2im_loop(g, x.shape, kh, kw, 1, 1),
                atol=ATOL,
                rtol=0,
            )

    def test_col2im_is_adjoint_of_im2col(self, rng):
        """<im2col(x), g> == <x, col2im(g)> — the defining adjoint identity."""
        shape = (3, 2, 7, 7)
        x = rng.standard_normal(shape)
        cols, _, _ = F.im2col(x, 3, 3, 2, 1)
        g = rng.standard_normal(cols.shape)
        lhs = float(np.sum(cols * g))
        rhs = float(np.sum(x * F.col2im(g, shape, 3, 3, 2, 1)))
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_pool_windows_matches_loop_reference(self, rng):
        for pool, stride, padding in [(2, 2, 0), (3, 2, 1), (2, 1, 0), (3, 3, 0)]:
            x = rng.standard_normal((2, 3, 8, 8))
            win_new, oh, ow = F.pool_windows(x, pool, stride, padding)
            win_ref, oh_r, ow_r = ref.extract_pool_windows_loop(x, pool, stride, padding)
            assert (oh, ow) == (oh_r, ow_r)
            flat = win_new.reshape(win_new.shape[:4] + (pool * pool,))
            np.testing.assert_allclose(flat, win_ref, atol=ATOL, rtol=0)


class TestFusedConvBackwardParity:
    """conv_backward_input must equal col2im(grad_mat @ W) to 1e-12."""

    @pytest.mark.parametrize(
        "shape,kernel,stride,padding,out_like",
        [
            ((2, 16, 10, 10), 3, 1, 1, 12),  # fused path (c >= threshold)
            ((2, 8, 9, 9), 5, 1, 2, 6),      # fused path, rank-like out dim
            ((3, 3, 8, 8), 3, 1, 1, 10),     # narrow input -> unfused dispatch
            ((2, 16, 8, 8), 2, 2, 0, 7),     # disjoint stride -> unfused dispatch
            ((1, 9, 6, 6), 3, 2, 1, 5),      # overlapping strided
        ],
    )
    def test_matches_unfused_reference(self, rng, shape, kernel, stride, padding, out_like):
        n, c, h, w = shape
        out_h = F.conv_output_size(h, kernel, stride, padding)
        out_w = F.conv_output_size(w, kernel, stride, padding)
        grad_mat = rng.standard_normal((n * out_h * out_w, out_like))
        weight = rng.standard_normal((out_like, c * kernel * kernel))
        fused = F.conv_backward_input(
            grad_mat, weight, shape, kernel, kernel, stride, padding
        )
        reference = ref.col2im_loop(
            grad_mat @ weight, shape, kernel, kernel, stride, padding
        )
        np.testing.assert_allclose(fused, reference, atol=ATOL, rtol=0)

    def test_shape_validation(self, rng):
        grad_mat = rng.standard_normal((8, 4))
        weight = rng.standard_normal((4, 9))
        with pytest.raises(Exception):
            F.conv_backward_input(grad_mat, weight, (1, 1, 5, 5), 3, 3, 1, 0)
        with pytest.raises(Exception):
            F.conv_backward_input(
                rng.standard_normal((9, 4)), rng.standard_normal((5, 9)),
                (1, 1, 5, 5), 3, 3, 1, 0,
            )

    def test_conv_layer_backward_matches_manual_reference(self, rng):
        """Full Conv2D backward (fused path) vs the reference col2im chain."""
        from repro.nn.layers import Conv2D

        layer = Conv2D(16, 6, 3, stride=1, padding=1, rng=rng)
        x = rng.standard_normal((2, 16, 7, 7))
        layer.train()
        out = layer.forward(x)
        grad_out = rng.standard_normal(out.shape)
        grad_in = layer.backward(grad_out)
        grad_mat = grad_out.transpose(0, 2, 3, 1).reshape(-1, 6)
        expected = ref.col2im_loop(
            grad_mat @ layer.weight_matrix, x.shape, 3, 3, 1, 1
        )
        np.testing.assert_allclose(grad_in, expected, atol=ATOL, rtol=0)


class TestPoolingLayerParity:
    @pytest.mark.parametrize("pool,stride", [(2, 2), (3, 2), (2, 1), (3, 3)])
    def test_maxpool_unpadded_matches_reference(self, rng, pool, stride):
        x = rng.standard_normal((3, 2, 9, 9))
        layer = MaxPool2D(pool, stride)
        out = layer.forward(x)
        grad_out = rng.standard_normal(out.shape)
        grad_in = layer.backward(grad_out)
        out_ref, grad_ref = ref.maxpool_forward_backward_loop(x, pool, stride, 0, grad_out)
        np.testing.assert_allclose(out, out_ref, atol=ATOL, rtol=0)
        np.testing.assert_allclose(grad_in, grad_ref, atol=ATOL, rtol=0)

    @pytest.mark.parametrize("pool,stride,padding", [(2, 2, 0), (3, 2, 1), (2, 1, 0)])
    def test_avgpool_matches_reference(self, rng, pool, stride, padding):
        x = rng.standard_normal((3, 2, 8, 8))
        layer = AvgPool2D(pool, stride, padding=padding)
        out = layer.forward(x)
        grad_out = rng.standard_normal(out.shape)
        grad_in = layer.backward(grad_out)
        out_ref, grad_ref = ref.avgpool_forward_backward_loop(x, pool, stride, padding, grad_out)
        np.testing.assert_allclose(out, out_ref, atol=ATOL, rtol=0)
        np.testing.assert_allclose(grad_in, grad_ref, atol=ATOL, rtol=0)

    def test_maxpool_tie_breaking_matches_reference_argmax(self):
        """All-tied windows (e.g. post-ReLU zeros) must route gradient like argmax."""
        x = np.zeros((2, 2, 4, 4))
        layer = MaxPool2D(2, 2)
        out = layer.forward(x)
        grad_out = np.arange(out.size, dtype=float).reshape(out.shape) + 1.0
        grad_in = layer.backward(grad_out)
        out_ref, grad_ref = ref.maxpool_forward_backward_loop(x, 2, 2, 0, grad_out)
        np.testing.assert_allclose(out, out_ref, atol=ATOL, rtol=0)
        np.testing.assert_allclose(grad_in, grad_ref, atol=ATOL, rtol=0)

    def test_maxpool_padded_positive_input_matches_reference(self, rng):
        """With strictly positive inputs the -inf padding fix changes nothing."""
        x = np.abs(rng.standard_normal((2, 2, 6, 6))) + 0.5
        layer = MaxPool2D(3, 2, padding=1)
        out = layer.forward(x)
        grad_out = rng.standard_normal(out.shape)
        grad_in = layer.backward(grad_out)
        out_ref, grad_ref = ref.maxpool_forward_backward_loop(x, 3, 2, 1, grad_out)
        np.testing.assert_allclose(out, out_ref, atol=ATOL, rtol=0)
        np.testing.assert_allclose(grad_in, grad_ref, atol=ATOL, rtol=0)


class TestMaxPoolPaddingFix:
    """Regression tests: padding must not win the max nor swallow gradient."""

    def test_all_negative_input_ignores_padding(self):
        x = -np.abs(np.random.default_rng(0).standard_normal((2, 3, 4, 4))) - 0.1
        layer = MaxPool2D(2, 2, padding=1)
        out = layer.forward(x)
        # Zero padding would have produced 0.0 in every border window; the
        # -inf padding must select the largest *real* (negative) entry.
        assert np.all(out < 0)

    def test_gradient_flows_for_all_negative_windows(self, grad_checker):
        rng = np.random.default_rng(3)
        x = -np.abs(rng.standard_normal((1, 1, 4, 4))) - 0.1
        layer = MaxPool2D(2, 2, padding=1)
        target = rng.standard_normal(layer.output_shape((1, 4, 4)))[None]

        def loss():
            return 0.5 * float(np.sum((layer.forward(x) - target) ** 2))

        out = layer.forward(x)
        grad_in = layer.backward(out - target)
        numeric = grad_checker(loss, x)
        np.testing.assert_allclose(grad_in, numeric, atol=1e-6)
        # Every output window routes its gradient to a real input position,
        # so the total gradient mass is conserved (nothing cropped away).
        assert np.count_nonzero(grad_in) > 0

    def test_gradient_mass_conserved_with_padding(self):
        rng = np.random.default_rng(4)
        x = -np.abs(rng.standard_normal((2, 2, 4, 4))) - 0.1
        layer = MaxPool2D(2, 2, padding=1)
        out = layer.forward(x)
        grad_out = np.ones_like(out)
        grad_in = layer.backward(grad_out)
        # Disjoint windows: each unit of output gradient lands on exactly one
        # input entry.  With zero padding, border windows lost their unit.
        assert float(grad_in.sum()) == pytest.approx(float(grad_out.sum()))

    def test_padding_at_least_pool_size_rejected(self):
        """padding >= pool_size would create windows made purely of padding."""
        for layer_cls in (MaxPool2D, AvgPool2D):
            with pytest.raises(ValueError):
                layer_cls(2, 2, padding=2)
            with pytest.raises(ValueError):
                layer_cls(2, 2, padding=3)

    def test_avgpool_keeps_zero_padding_semantics(self, rng):
        """Average pooling still counts padded zeros toward the mean."""
        x = rng.standard_normal((1, 1, 2, 2))
        layer = AvgPool2D(2, 2, padding=1)
        out = layer.forward(x)
        out_ref, _ = ref.avgpool_forward_backward_loop(x, 2, 2, 1, np.zeros_like(out))
        np.testing.assert_allclose(out, out_ref, atol=ATOL, rtol=0)
