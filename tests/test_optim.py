"""Tests for optimizers and learning-rate schedules."""

import numpy as np
import pytest

from repro.nn.optim import (
    SGD,
    Adam,
    ConstantLR,
    CosineLR,
    ExponentialLR,
    InverseDecayLR,
    StepLR,
    as_schedule,
)
from repro.nn.parameter import Parameter


def quadratic_params(start=5.0):
    """A single scalar parameter minimizing f(w) = 0.5 w²(gradient = w)."""
    return Parameter(np.array([start]))


class TestSchedules:
    def test_constant(self):
        schedule = ConstantLR(0.1)
        assert schedule(0) == 0.1
        assert schedule(1000) == 0.1

    def test_step(self):
        schedule = StepLR(1.0, step_size=10, gamma=0.5)
        assert schedule(0) == 1.0
        assert schedule(9) == 1.0
        assert schedule(10) == 0.5
        assert schedule(25) == 0.25

    def test_exponential(self):
        schedule = ExponentialLR(1.0, gamma=0.9)
        assert schedule(3) == pytest.approx(0.9**3)

    def test_inverse_decay_matches_caffe_formula(self):
        schedule = InverseDecayLR(0.01, gamma=1e-4, power=0.75)
        assert schedule(0) == pytest.approx(0.01)
        assert schedule(1000) == pytest.approx(0.01 * (1 + 0.1) ** -0.75)

    def test_cosine_endpoints(self):
        schedule = CosineLR(1.0, total_iterations=100, min_lr=0.1)
        assert schedule(0) == pytest.approx(1.0)
        assert schedule(100) == pytest.approx(0.1)
        assert schedule(200) == pytest.approx(0.1)

    def test_as_schedule_coercion(self):
        assert isinstance(as_schedule(0.5), ConstantLR)
        existing = StepLR(0.1, 5)
        assert as_schedule(existing) is existing

    def test_negative_iteration_rejected(self):
        with pytest.raises(ValueError):
            ConstantLR(0.1)(-1)


class TestSGD:
    def test_plain_sgd_descends_quadratic(self):
        param = quadratic_params()
        optimizer = SGD([param], lr=0.1)
        for _ in range(100):
            param.zero_grad()
            param.accumulate_grad(param.data.copy())
            optimizer.step()
        assert abs(param.data[0]) < 1e-3

    def test_single_step_value(self):
        param = Parameter(np.array([1.0, 2.0]))
        optimizer = SGD([param], lr=0.5)
        param.accumulate_grad(np.array([2.0, 2.0]))
        optimizer.step()
        assert np.allclose(param.data, np.array([0.0, 1.0]))

    def test_momentum_accelerates(self):
        plain = quadratic_params()
        momentum = quadratic_params()
        opt_plain = SGD([plain], lr=0.01)
        opt_momentum = SGD([momentum], lr=0.01, momentum=0.9)
        for _ in range(50):
            for param, opt in ((plain, opt_plain), (momentum, opt_momentum)):
                param.zero_grad()
                param.accumulate_grad(param.data.copy())
                opt.step()
        assert abs(momentum.data[0]) < abs(plain.data[0])

    def test_weight_decay_shrinks_without_gradient(self):
        param = Parameter(np.array([1.0]))
        optimizer = SGD([param], lr=0.1, weight_decay=0.5)
        optimizer.step()  # zero gradient, decay only
        assert param.data[0] == pytest.approx(1.0 - 0.1 * 0.5)

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD([quadratic_params()], lr=0.1, nesterov=True)

    def test_respects_mask(self):
        param = Parameter(np.array([1.0, 1.0]))
        param.set_mask(np.array([True, False]))
        optimizer = SGD([param], lr=0.1)
        param.accumulate_grad(np.array([1.0, 1.0]))
        optimizer.step()
        assert param.data[1] == 0.0
        assert param.data[0] != 1.0

    def test_skips_non_trainable(self):
        param = Parameter(np.array([1.0]), trainable=False)
        optimizer = SGD([param], lr=0.1)
        param.accumulate_grad(np.array([1.0]))
        optimizer.step()
        assert param.data[0] == 1.0

    def test_set_parameters_resets_state(self):
        param = quadratic_params()
        optimizer = SGD([param], lr=0.1, momentum=0.9)
        param.accumulate_grad(np.array([1.0]))
        optimizer.step()
        assert optimizer._velocity
        new_param = quadratic_params()
        optimizer.set_parameters([new_param])
        assert not optimizer._velocity

    def test_set_parameters_keep_state_drops_mismatched_buffers(self):
        """Regression: state is keyed by index, so a structural change that
        resizes a parameter must not leave a stale buffer to be applied to
        whatever parameter now sits at that index."""
        first = Parameter(np.zeros(3))
        second = Parameter(np.zeros(2))
        optimizer = SGD([first, second], lr=0.1, momentum=0.9)
        first.accumulate_grad(np.ones(3))
        second.accumulate_grad(np.ones(2))
        optimizer.step()
        assert set(optimizer._velocity) == {0, 1}
        # Structural change: index 0 now holds a smaller parameter.
        replacement = Parameter(np.zeros(2))
        optimizer.set_parameters([replacement, second], keep_state=True)
        assert 0 not in optimizer._velocity  # stale 3-vector dropped
        assert 1 in optimizer._velocity  # shape-matched buffer kept
        replacement.accumulate_grad(np.ones(2))
        second.zero_grad()
        second.accumulate_grad(np.ones(2))
        optimizer.step()  # must not broadcast a stale buffer
        assert optimizer._velocity[0].shape == (2,)

    def test_set_parameters_keep_state_drops_out_of_range_indices(self):
        params = [quadratic_params(), quadratic_params()]
        optimizer = SGD(params, lr=0.1, momentum=0.9)
        for param in params:
            param.accumulate_grad(np.array([1.0]))
        optimizer.step()
        optimizer.set_parameters(params[:1], keep_state=True)
        assert set(optimizer._velocity) == {0}

    def test_stale_velocity_shape_discarded_on_step(self):
        """Regression: an in-place restructure (set_factors style) changes the
        parameter's shape without re-binding the optimizer; the next step must
        re-zero the velocity rather than apply the stale buffer."""
        param = Parameter(np.zeros(3))
        optimizer = SGD([param], lr=0.1, momentum=0.9)
        param.accumulate_grad(np.ones(3))
        optimizer.step()
        param.data = np.zeros(2)  # structural change, no rebind
        param.grad = np.zeros(2)
        param.accumulate_grad(np.ones(2))
        optimizer.step()
        assert optimizer._velocity[0].shape == (2,)
        np.testing.assert_allclose(param.data, -0.1 * np.ones(2))

    def test_requires_parameters(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(TypeError):
            SGD([np.zeros(3)], lr=0.1)

    def test_schedule_is_used(self):
        param = quadratic_params()
        optimizer = SGD([param], lr=StepLR(1.0, step_size=1, gamma=0.0))
        assert optimizer.current_lr() == 1.0
        optimizer.step()
        assert optimizer.current_lr() == 0.0


class TestAdam:
    def test_converges_on_quadratic(self):
        param = quadratic_params()
        optimizer = Adam([param], lr=0.2)
        for _ in range(200):
            param.zero_grad()
            param.accumulate_grad(param.data.copy())
            optimizer.step()
        assert abs(param.data[0]) < 1e-2

    def test_first_step_magnitude_close_to_lr(self):
        param = Parameter(np.array([1.0]))
        optimizer = Adam([param], lr=0.1)
        param.accumulate_grad(np.array([123.0]))
        optimizer.step()
        # Adam's first update is ~lr regardless of gradient scale.
        assert abs(1.0 - param.data[0]) == pytest.approx(0.1, rel=1e-3)

    def test_invalid_hyperparameters(self):
        param = quadratic_params()
        with pytest.raises(ValueError):
            Adam([param], beta1=1.0)
        with pytest.raises(ValueError):
            Adam([param], eps=0.0)

    def test_decoupled_weight_decay(self):
        param = Parameter(np.array([1.0]))
        optimizer = Adam([param], lr=0.1, weight_decay=0.5, decoupled=True)
        optimizer.step()  # zero gradient: only the decoupled decay applies
        assert param.data[0] == pytest.approx(1.0 - 0.1 * 0.5)

    def test_reset_state(self):
        param = quadratic_params()
        optimizer = Adam([param], lr=0.1)
        param.accumulate_grad(np.array([1.0]))
        optimizer.step()
        optimizer.reset_state()
        assert not optimizer._m and not optimizer._v

    def test_set_parameters_keep_state_drops_mismatched_buffers(self):
        first = Parameter(np.zeros(3))
        second = Parameter(np.zeros(2))
        optimizer = Adam([first, second], lr=0.1)
        first.accumulate_grad(np.ones(3))
        second.accumulate_grad(np.ones(2))
        optimizer.step()
        replacement = Parameter(np.zeros(2))
        optimizer.set_parameters([replacement, second], keep_state=True)
        assert 0 not in optimizer._m and 0 not in optimizer._steps
        assert 1 in optimizer._m and optimizer._steps[1] == 1
        replacement.accumulate_grad(np.ones(2))
        optimizer.step()  # stale moments must not be applied
        assert optimizer._m[0].shape == (2,)
