"""Cache-lifecycle regression tests.

Backward context must be cached only in training mode and dropped at the end
of ``backward`` — layers must not retain O(batch) activations across
iterations or in inference-only use (seed bug: ``Conv2D._cols_cache``,
pooling windows and the linear/low-rank input caches lived forever).
"""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.nn import (
    AvgPool2D,
    Conv2D,
    Linear,
    LowRankConv2D,
    LowRankLinear,
    MaxPool2D,
    ReLU,
    Sequential,
)
from repro.nn.layers import Flatten


def cached_values(layer):
    """The layer's cache-slot values, in declaration order."""
    return [getattr(layer, attr) for attr in layer._cache_attrs]


def make_layers():
    return [
        (Conv2D(2, 3, 3, rng=0), np.ones((2, 2, 6, 6))),
        (LowRankConv2D(2, 3, 3, rank=2, rng=0), np.ones((2, 2, 6, 6))),
        (Linear(5, 4, rng=0), np.ones((2, 5))),
        (LowRankLinear(5, 4, rank=2, rng=0), np.ones((2, 5))),
        (MaxPool2D(2, 2), np.ones((2, 2, 6, 6))),
        (AvgPool2D(2, 2), np.ones((2, 2, 6, 6))),
        (ReLU(), np.ones((2, 5))),
        (Flatten(), np.ones((2, 2, 3))),
    ]


class TestCacheLifecycle:
    def test_training_forward_populates_caches(self):
        for layer, x in make_layers():
            layer.train()
            layer.forward(x)
            assert any(v is not None for v in cached_values(layer)), layer

    def test_backward_releases_caches(self):
        for layer, x in make_layers():
            layer.train()
            out = layer.forward(x)
            layer.backward(np.ones_like(out))
            assert all(v is None for v in cached_values(layer)), layer

    def test_second_backward_raises(self):
        layer = Conv2D(2, 3, 3, rng=0)
        out = layer.forward(np.ones((2, 2, 6, 6)))
        grad = np.ones_like(out)
        layer.backward(grad)
        with pytest.raises(ShapeError):
            layer.backward(grad)

    def test_eval_forward_skips_caching(self):
        for layer, x in make_layers():
            layer.eval()
            layer.forward(x)
            assert all(v is None for v in cached_values(layer)), layer

    def test_eval_forward_clears_stale_training_caches(self):
        layer = Conv2D(2, 3, 3, rng=0)
        layer.train()
        layer.forward(np.ones((2, 2, 6, 6)))
        assert layer._cols_cache is not None
        layer.eval()
        layer.forward(np.ones((2, 2, 6, 6)))
        assert layer._cols_cache is None

    def test_predict_leaves_no_caches(self):
        network = Sequential(
            [Conv2D(1, 2, 3, rng=0, name="c"), MaxPool2D(2, 2), Flatten(), Linear(8, 3, rng=1)]
        )
        network.predict(np.ones((4, 1, 6, 6)))
        for layer in network:
            assert all(v is None for v in cached_values(layer)), layer

    def test_release_caches_on_network(self):
        network = Sequential([Linear(5, 4, rng=0, name="a"), ReLU(), Linear(4, 2, rng=1, name="b")])
        network.train()
        network.forward(np.ones((3, 5)))
        assert any(any(v is not None for v in cached_values(l)) for l in network)
        network.release_caches()
        for layer in network:
            assert all(v is None for v in cached_values(layer)), layer

    def test_training_loop_still_works_after_release(self):
        """forward → backward → forward → backward keeps functioning."""
        layer = Linear(5, 4, rng=0)
        for _ in range(3):
            out = layer.forward(np.ones((2, 5)))
            layer.backward(np.ones_like(out))


class TestLossCacheLifecycle:
    def test_losses_release_caches_after_backward(self):
        from repro.nn import L1Loss, MSELoss, SoftmaxCrossEntropy

        rng = np.random.default_rng(0)
        sce = SoftmaxCrossEntropy()
        sce.forward(rng.standard_normal((8, 4)), np.arange(8) % 4)
        assert sce._probs is not None
        sce.backward()
        assert sce._probs is None and sce._targets is None
        for loss in (MSELoss(), L1Loss()):
            loss.forward(rng.standard_normal((8, 4)), rng.standard_normal((8, 4)))
            assert loss._diff is not None
            loss.backward()
            assert loss._diff is None
        with pytest.raises(ShapeError):
            sce.backward()
