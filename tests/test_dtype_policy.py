"""Tests for the global dtype policy (:mod:`repro.nn.dtype`)."""

import numpy as np
import pytest

from repro.nn import Conv2D, Linear, MaxPool2D, Parameter, ReLU, Sequential, dtype
from repro.nn.layers import Flatten


@pytest.fixture(autouse=True)
def restore_policy():
    """Never leak a modified policy into other tests."""
    previous = dtype.default_dtype()
    yield
    dtype.set_default_dtype(previous)


class TestPolicyPlumbing:
    def test_default_is_float64(self):
        assert dtype.default_dtype() == np.float64
        assert dtype.as_float([1, 2]).dtype == np.float64

    def test_set_and_restore(self):
        previous = dtype.set_default_dtype(np.float32)
        assert previous == np.float64
        assert dtype.default_dtype() == np.float32
        dtype.set_default_dtype(previous)
        assert dtype.default_dtype() == np.float64

    def test_scope_restores_on_exit_and_error(self):
        with dtype.dtype_scope("float32") as active:
            assert active == np.float32
            assert dtype.default_dtype() == np.float32
        assert dtype.default_dtype() == np.float64
        with pytest.raises(RuntimeError):
            with dtype.dtype_scope(np.float32):
                raise RuntimeError("boom")
        assert dtype.default_dtype() == np.float64

    def test_rejects_non_float_dtypes(self):
        for bad in (np.int32, np.complex128, "int64", bool):
            with pytest.raises(ValueError):
                dtype.set_default_dtype(bad)

    def test_as_float_no_copy_when_matching(self):
        x = np.ones(4, dtype=np.float64)
        assert dtype.as_float(x) is x


class TestPolicyInLayers:
    def test_parameter_uses_policy_at_construction(self):
        with dtype.dtype_scope(np.float32):
            p = Parameter(np.arange(3))
            assert p.data.dtype == np.float32
            assert p.grad.dtype == np.float32
        assert Parameter(np.arange(3)).data.dtype == np.float64

    def test_float32_inference_end_to_end(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((4, 1, 8, 8))
        with dtype.dtype_scope(np.float32):
            network = Sequential(
                [
                    Conv2D(1, 2, 3, padding=1, rng=0, name="c"),
                    ReLU(),
                    MaxPool2D(2, 2),
                    Flatten(),
                    Linear(2 * 4 * 4, 3, rng=1, name="fc"),
                ]
            )
            out = network.predict(x)
            assert out.dtype == np.float32
            for param in network.parameters():
                assert param.data.dtype == np.float32

    def test_float64_default_unchanged(self):
        network = Sequential([Linear(5, 2, rng=0)])
        out = network.forward(np.ones((3, 5), dtype=np.float32))
        assert out.dtype == np.float64

    def test_float32_matches_float64_numerics(self):
        """Same weights: float32 inference tracks float64 to single precision."""
        rng = np.random.default_rng(7)
        x = rng.standard_normal((2, 1, 6, 6))
        net64 = Sequential([Conv2D(1, 2, 3, rng=3, name="c"), ReLU()])
        out64 = net64.predict(x)
        with dtype.dtype_scope(np.float32):
            net32 = Sequential([Conv2D(1, 2, 3, rng=3, name="c"), ReLU()])
            out32 = net32.predict(x)
        np.testing.assert_allclose(out32, out64, atol=1e-5)

    def test_training_gradients_follow_policy(self):
        with dtype.dtype_scope(np.float32):
            layer = Linear(4, 2, rng=0)
            out = layer.forward(np.ones((3, 4)))
            layer.backward(np.ones_like(out))
            assert layer.weight.grad.dtype == np.float32

    def test_dropout_mask_follows_policy(self):
        from repro.nn import Dropout

        with dtype.dtype_scope(np.float32):
            layer = Dropout(0.5, rng=0)
            layer.train()
            out = layer.forward(np.ones((16, 16)))
            assert out.dtype == np.float32
            assert layer._mask.dtype == np.float32
