"""Tests for the low-rank approximation package (PCA, SVD, error curves)."""

import numpy as np
import pytest

from repro.exceptions import RankError
from repro.lowrank import (
    Factorization,
    LowRankApproximator,
    covariance_eigendecomposition,
    energy_retained,
    minimal_rank,
    pca_factorize,
    pca_reconstruction_error,
    reconstruction_error,
    reconstruction_error_curve,
    svd_factorize,
    svd_reconstruction_error,
    svd_spectrum,
)


def low_rank_matrix(n, m, rank, seed=0, noise=0.0):
    rng = np.random.default_rng(seed)
    matrix = rng.normal(size=(n, rank)) @ rng.normal(size=(rank, m))
    if noise:
        matrix = matrix + noise * rng.normal(size=(n, m))
    return matrix


class TestPCA:
    def test_full_rank_reconstruction_exact(self):
        w = np.random.default_rng(0).normal(size=(8, 12))
        result = pca_factorize(w, center=False)
        assert np.allclose(result.reconstruct(), w)

    def test_centered_full_rank_reconstruction_exact(self):
        w = np.random.default_rng(1).normal(size=(8, 12)) + 5.0
        result = pca_factorize(w, rank=8, center=True)
        assert np.allclose(result.reconstruct(), w)

    def test_eigenvalues_sorted_and_nonnegative(self):
        w = np.random.default_rng(2).normal(size=(10, 6))
        eigenvalues, eigenvectors, _ = covariance_eigendecomposition(w)
        assert np.all(np.diff(eigenvalues) <= 1e-12)
        assert np.all(eigenvalues >= 0)
        assert np.allclose(eigenvectors.T @ eigenvectors, np.eye(6), atol=1e-10)

    def test_recovers_true_rank(self):
        w = low_rank_matrix(20, 30, 4, seed=3)
        result = pca_factorize(w, center=False)
        significant = np.sum(result.eigenvalues > 1e-10 * result.eigenvalues[0])
        assert significant == 4

    def test_uncentered_pca_matches_svd_truncation(self):
        w = np.random.default_rng(4).normal(size=(10, 15))
        pca = pca_factorize(w, rank=5, center=False)
        svd = svd_factorize(w, rank=5)
        assert np.allclose(pca.reconstruct(), svd.reconstruct(), atol=1e-8)

    def test_reconstruction_error_decreases_with_rank(self):
        w = low_rank_matrix(12, 16, 8, seed=5, noise=0.1)
        errors = [pca_reconstruction_error(w, k) for k in range(1, 13)]
        assert all(a >= b - 1e-12 for a, b in zip(errors, errors[1:]))
        assert errors[-1] == pytest.approx(0.0, abs=1e-10)

    def test_rank_validation(self):
        with pytest.raises(RankError):
            pca_factorize(np.zeros((4, 6)), rank=7)
        with pytest.raises(RankError):
            pca_factorize(np.ones((4, 6)), rank=0)


class TestSVD:
    def test_truncation_is_best_approximation(self):
        w = np.random.default_rng(6).normal(size=(9, 7))
        result = svd_factorize(w, rank=3)
        s = svd_spectrum(w)
        expected_error = np.sum(s[3:] ** 2) / np.sum(s**2)
        actual = np.linalg.norm(w - result.reconstruct()) ** 2 / np.linalg.norm(w) ** 2
        assert actual == pytest.approx(expected_error)
        assert svd_reconstruction_error(w, 3) == pytest.approx(expected_error)

    def test_full_rank_exact(self):
        w = np.random.default_rng(7).normal(size=(5, 5))
        assert np.allclose(svd_factorize(w).reconstruct(), w)

    def test_spectrum_descending(self):
        s = svd_spectrum(np.random.default_rng(8).normal(size=(6, 10)))
        assert np.all(np.diff(s) <= 1e-12)

    def test_rank_validation(self):
        with pytest.raises(RankError):
            svd_factorize(np.zeros((3, 3)), rank=4)
        with pytest.raises(RankError):
            svd_reconstruction_error(np.ones((3, 3)), 0)


class TestErrorCurves:
    def test_curve_matches_eq3(self):
        spectrum = np.array([4.0, 3.0, 2.0, 1.0])
        curve = reconstruction_error_curve(spectrum)
        total = 10.0
        assert np.allclose(curve, [6.0 / total, 3.0 / total, 1.0 / total, 0.0])

    def test_reconstruction_error_lookup(self):
        spectrum = np.array([4.0, 3.0, 2.0, 1.0])
        assert reconstruction_error(spectrum, 2) == pytest.approx(0.3)
        assert energy_retained(spectrum, 2) == pytest.approx(0.7)

    def test_minimal_rank(self):
        spectrum = np.array([4.0, 3.0, 2.0, 1.0])
        assert minimal_rank(spectrum, 0.0) == 4
        assert minimal_rank(spectrum, 0.10) == 3
        assert minimal_rank(spectrum, 0.30) == 2
        assert minimal_rank(spectrum, 0.95) == 1

    def test_minimal_rank_monotone_in_tolerance(self):
        spectrum = np.random.default_rng(9).uniform(0, 1, size=20)
        ranks = [minimal_rank(spectrum, t) for t in np.linspace(0, 1, 11)]
        assert all(a >= b for a, b in zip(ranks, ranks[1:]))

    def test_zero_spectrum(self):
        assert minimal_rank(np.zeros(5), 0.0) == 1
        assert np.allclose(reconstruction_error_curve(np.zeros(5)), 0.0)

    def test_invalid_spectrum(self):
        with pytest.raises(RankError):
            reconstruction_error_curve(np.array([]))
        with pytest.raises(RankError):
            reconstruction_error_curve(np.array([1.0, -5.0]))


class TestLowRankApproximator:
    def test_methods_agree_on_uncentered_data(self):
        w = np.random.default_rng(10).normal(size=(12, 9))
        pca = LowRankApproximator("pca")
        svd = LowRankApproximator("svd")
        assert pca.minimal_rank(w, 0.05) <= 9
        # PCA (uncentered) spectrum is the squared-singular-value spectrum up
        # to the 1/(N-1) covariance normalization, so the error curves match.
        assert np.allclose(pca.error_curve(w), svd.error_curve(w), atol=1e-10)

    def test_factorize_to_tolerance(self):
        w = low_rank_matrix(15, 20, 5, seed=11, noise=0.01)
        approximator = LowRankApproximator("pca")
        factorization, rank = approximator.factorize_to_tolerance(w, 0.01)
        assert factorization.rank == rank
        assert rank <= 8
        assert factorization.relative_error(w) <= 0.02

    def test_factorization_dataclass(self):
        w = np.random.default_rng(12).normal(size=(6, 6))
        factorization = LowRankApproximator("svd").factorize(w, 6)
        assert isinstance(factorization, Factorization)
        assert factorization.relative_error(w) == pytest.approx(0.0, abs=1e-12)

    def test_unknown_method_rejected(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            LowRankApproximator("qr")

    def test_rank_out_of_range(self):
        with pytest.raises(RankError):
            LowRankApproximator("pca").factorize(np.zeros((4, 4)) + np.eye(4), rank=9)
