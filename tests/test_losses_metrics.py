"""Tests for loss functions and classification metrics."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.nn.losses import L1Loss, MSELoss, SoftmaxCrossEntropy
from repro.nn.metrics import accuracy, confusion_matrix, error_rate, top_k_accuracy


class TestSoftmaxCrossEntropy:
    def test_uniform_logits_loss_is_log_classes(self):
        loss = SoftmaxCrossEntropy()
        value = loss.forward(np.zeros((4, 10)), np.array([0, 1, 2, 3]))
        assert value == pytest.approx(np.log(10))

    def test_perfect_prediction_low_loss(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        assert loss.forward(logits, np.array([0, 1])) == pytest.approx(0.0, abs=1e-6)

    def test_backward_is_probs_minus_onehot(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[1.0, 2.0, 0.5], [0.0, 0.0, 0.0]])
        targets = np.array([1, 2])
        loss.forward(logits, targets)
        grad = loss.backward()
        shifted = logits - logits.max(axis=1, keepdims=True)
        probs = np.exp(shifted) / np.exp(shifted).sum(axis=1, keepdims=True)
        expected = probs.copy()
        expected[0, 1] -= 1
        expected[1, 2] -= 1
        assert np.allclose(grad, expected / 2)

    def test_gradient_matches_numerical(self, grad_checker):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(5, 4))
        targets = rng.integers(0, 4, size=5)
        loss = SoftmaxCrossEntropy()

        def value():
            return loss.forward(logits, targets)

        loss.forward(logits, targets)
        grad = loss.backward()
        assert np.allclose(grad, grad_checker(value, logits), atol=1e-6)

    def test_validation(self):
        loss = SoftmaxCrossEntropy()
        with pytest.raises(ShapeError):
            loss.forward(np.zeros((2, 3, 4)), np.array([0, 1]))
        with pytest.raises(ShapeError):
            loss.forward(np.zeros((2, 3)), np.array([0]))
        with pytest.raises(ValueError):
            loss.forward(np.zeros((2, 3)), np.array([0, 5]))
        with pytest.raises(ShapeError):
            SoftmaxCrossEntropy().backward()


class TestRegressionLosses:
    def test_mse_value_and_gradient(self, grad_checker):
        rng = np.random.default_rng(1)
        pred = rng.normal(size=(3, 4))
        target = rng.normal(size=(3, 4))
        loss = MSELoss()
        value = loss.forward(pred, target)
        assert value == pytest.approx(np.mean((pred - target) ** 2))

        def f():
            return loss.forward(pred, target)

        loss.forward(pred, target)
        assert np.allclose(loss.backward(), grad_checker(f, pred), atol=1e-6)

    def test_l1_value(self):
        loss = L1Loss()
        value = loss.forward(np.array([1.0, -1.0]), np.array([0.0, 0.0]))
        assert value == pytest.approx(1.0)
        grad = loss.backward()
        assert np.allclose(grad, np.array([0.5, -0.5]))

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            MSELoss().forward(np.zeros((2, 2)), np.zeros((2, 3)))
        with pytest.raises(ShapeError):
            L1Loss().forward(np.zeros(2), np.zeros(3))


class TestMetrics:
    def test_accuracy_from_logits_and_labels(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4], [0.3, 0.7]])
        targets = np.array([0, 1, 1, 1])
        assert accuracy(logits, targets) == pytest.approx(0.75)
        assert error_rate(logits, targets) == pytest.approx(0.25)

    def test_accuracy_from_class_indices(self):
        assert accuracy(np.array([0, 1, 2]), np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_accuracy_validation(self):
        with pytest.raises(ShapeError):
            accuracy(np.zeros((2, 2, 2)), np.zeros(2))
        with pytest.raises(ShapeError):
            accuracy(np.zeros((3, 2)), np.zeros(2))
        with pytest.raises(ValueError):
            accuracy(np.zeros((0, 2)), np.zeros(0))

    def test_top_k(self):
        logits = np.array([[0.1, 0.5, 0.4], [0.3, 0.2, 0.5]])
        targets = np.array([1, 0])
        assert top_k_accuracy(logits, targets, k=1) == pytest.approx(0.5)
        assert top_k_accuracy(logits, targets, k=2) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            top_k_accuracy(logits, targets, k=4)

    def test_confusion_matrix(self):
        predictions = np.array([0, 1, 1, 2])
        targets = np.array([0, 1, 2, 2])
        matrix = confusion_matrix(predictions, targets, num_classes=3)
        assert matrix[0, 0] == 1
        assert matrix[1, 1] == 1
        assert matrix[2, 1] == 1
        assert matrix[2, 2] == 1
        assert matrix.sum() == 4

    def test_confusion_matrix_from_logits(self):
        logits = np.array([[0.9, 0.1], [0.1, 0.9]])
        matrix = confusion_matrix(logits, np.array([0, 1]))
        assert np.array_equal(matrix, np.eye(2, dtype=int))
