"""Multi-writer safety tests for :class:`repro.experiments.store.RunStore`.

PR 9 satellite: the per-fingerprint file lock now covers ``save``/``load``/
``update`` (not just journal appends), so concurrent writers — scheduler
worker threads in one daemon, or independent processes sharing one store —
serialize whole artifacts.  These tests drive the store from threads and
from subprocesses and assert zero torn artifacts, zero lost updates, and
correct cross-writer point reuse.
"""

import json
import subprocess
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.experiments import ExperimentSpec, RunStore, execute_spec

FAST = dict(
    train_samples=120,
    test_samples=48,
    baseline_iterations=30,
    clip_iterations=20,
    clip_interval=10,
    deletion_iterations=20,
    finetune_iterations=10,
    record_interval=10,
    eval_interval=20,
    batch_size=24,
)


def sweep_spec(**overrides) -> ExperimentSpec:
    spec = ExperimentSpec(
        kind="sweep",
        method="rank_clipping",
        workload="mlp",
        scale="tiny",
        scale_overrides=FAST,
        grid=(0.05, 0.3),
        name="conc-sweep",
    )
    return spec.with_updates(**overrides) if overrides else spec


class TestThreadedWriters:
    def test_update_loses_no_increments_across_threads(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        fingerprint = "f" * 16
        threads, per_thread = 8, 25

        def merge(existing):
            artifact = existing or {"fingerprint": fingerprint, "count": 0}
            artifact["count"] += 1
            return artifact

        def worker():
            for _ in range(per_thread):
                store.update(fingerprint, merge)

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        artifact = store.load(fingerprint)
        assert artifact["count"] == threads * per_thread
        assert store.quarantined() == []

    def test_racing_saves_leave_one_valid_artifact(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        fingerprint = "a" * 16

        def writer(tag):
            for i in range(20):
                store.save(
                    {"fingerprint": fingerprint, "writer": tag, "iteration": i}
                )

        with ThreadPoolExecutor(max_workers=6) as pool:
            list(pool.map(writer, range(6)))
        artifact = store.load(fingerprint)
        # Last writer wins, but the artifact is whole: checksum verified by
        # load (a torn write would have been quarantined).
        assert artifact["iteration"] == 19
        assert store.quarantined() == []

    def test_concurrent_same_spec_runs_agree(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        spec = sweep_spec()
        results = []

        def run():
            results.append(execute_spec(spec, store=store))

        pool = [threading.Thread(target=run) for _ in range(2)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(timeout=600)
        assert len(results) == 2
        artifact = store.load(spec.fingerprint())
        assert artifact["complete"] is True
        assert len(artifact["points"]) == 2
        assert store.quarantined() == []
        # A follow-up run finds everything stored: 0 computed, all reused.
        rerun = execute_spec(spec, store=store)
        assert rerun.computed_points == 0
        assert rerun.reused_points == 2

    def test_overlapping_specs_share_points_across_threads(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        narrow = sweep_spec(grid=(0.05,), name="narrow")
        wide = sweep_spec(grid=(0.05, 0.3), name="wide")

        with ThreadPoolExecutor(max_workers=2) as pool:
            futures = [
                pool.submit(execute_spec, spec, store=store)
                for spec in (narrow, wide)
            ]
            runs = [future.result(timeout=600) for future in futures]
        assert all(run.failures == [] for run in runs)
        for spec, expected_points in ((narrow, 1), (wide, 2)):
            artifact = store.load(spec.fingerprint())
            assert artifact["complete"] is True
            assert len(artifact["points"]) == expected_points
        assert store.quarantined() == []
        # The shared tolerance=0.05 point has one payload, byte for byte.
        shared = set(store.load(narrow.fingerprint())["points"]) & set(
            store.load(wide.fingerprint())["points"]
        )
        assert len(shared) == 1
        (shared_fp,) = shared
        payload_a = store.load(narrow.fingerprint())["points"][shared_fp]["payload"]
        payload_b = store.load(wide.fingerprint())["points"][shared_fp]["payload"]
        assert json.dumps(payload_a, sort_keys=True) == json.dumps(
            payload_b, sort_keys=True
        )


_SUBPROCESS_WRITER = """
import sys
from pathlib import Path
sys.path.insert(0, sys.argv[1])
from repro.experiments import RunStore

store = RunStore(Path(sys.argv[2]))
fingerprint = sys.argv[3]
rounds = int(sys.argv[4])

def merge(existing):
    artifact = existing or {"fingerprint": fingerprint, "count": 0, "writers": []}
    artifact["count"] += 1
    pid = str(sys.argv[5])
    if pid not in artifact["writers"]:
        artifact["writers"].append(pid)
    return artifact

for _ in range(rounds):
    store.update(fingerprint, merge)
"""


class TestSubprocessWriters:
    def test_update_serializes_across_processes(self, tmp_path):
        """Independent OS processes (the daemon + a CLI ``run``) share one
        store: flock must serialize them exactly like threads."""
        store_root = tmp_path / "runs"
        RunStore(store_root)  # create the directory up front
        fingerprint = "b" * 16
        src = str(Path(__file__).resolve().parents[1] / "src")
        writers, rounds = 4, 15
        procs = [
            subprocess.Popen(
                [
                    sys.executable,
                    "-c",
                    _SUBPROCESS_WRITER,
                    src,
                    str(store_root),
                    fingerprint,
                    str(rounds),
                    f"w{i}",
                ]
            )
            for i in range(writers)
        ]
        for proc in procs:
            assert proc.wait(timeout=120) == 0
        store = RunStore(store_root)
        artifact = store.load(fingerprint)
        assert artifact["count"] == writers * rounds
        assert sorted(artifact["writers"]) == [f"w{i}" for i in range(writers)]
        assert store.quarantined() == []


class TestLockFiles:
    def test_lock_sidecars_stay_out_of_artifact_namespace(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        store.save({"fingerprint": "c" * 16, "value": 1})
        assert store.fingerprints() == ["c" * 16]
        assert store.list_runs()[0]["fingerprint"] == "c" * 16
        # The hidden .lock sidecar exists but is invisible to listings.
        assert any(p.name.endswith(".lock") for p in store.root.iterdir())

    def test_update_rejects_mismatched_fingerprint(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError):
            store.update("d" * 16, lambda existing: {"fingerprint": "other"})
