"""Tests for Linear and LowRankLinear layers, including gradient checks."""

import numpy as np
import pytest

from repro.exceptions import RankError, ShapeError
from repro.nn.layers import Linear, LowRankLinear


class TestLinear:
    def test_forward_matches_manual(self):
        layer = Linear(3, 2, rng=0)
        layer.weight.data = np.array([[1.0, 0.0, -1.0], [2.0, 1.0, 0.0]])
        layer.bias.data = np.array([0.5, -0.5])
        x = np.array([[1.0, 2.0, 3.0]])
        out = layer.forward(x)
        assert np.allclose(out, np.array([[1 - 3 + 0.5, 2 + 2 - 0.5]]))

    def test_forward_shape_validation(self):
        layer = Linear(4, 2, rng=0)
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((3, 5)))
        with pytest.raises(ShapeError):
            layer.forward(np.zeros(4))

    def test_backward_before_forward_raises(self):
        layer = Linear(4, 2, rng=0)
        with pytest.raises(ShapeError):
            layer.backward(np.zeros((1, 2)))

    def test_no_bias_option(self):
        layer = Linear(3, 2, bias=False, rng=0)
        assert layer.bias is None
        assert set(layer.parameters()) == {"weight"}

    def test_gradients_match_numerical(self, grad_checker):
        rng = np.random.default_rng(0)
        layer = Linear(5, 3, rng=1)
        x = rng.normal(size=(4, 5))
        target = rng.normal(size=(4, 3))

        def loss():
            return 0.5 * float(np.sum((layer.forward(x) - target) ** 2))

        out = layer.forward(x)
        layer.zero_grad()
        grad_in = layer.backward(out - target)

        num_w = grad_checker(loss, layer.weight.data)
        num_b = grad_checker(loss, layer.bias.data)
        num_x = grad_checker(loss, x)
        assert np.allclose(layer.weight.grad, num_w, atol=1e-6)
        assert np.allclose(layer.bias.grad, num_b, atol=1e-6)
        assert np.allclose(grad_in, num_x, atol=1e-6)

    def test_output_shape(self):
        layer = Linear(8, 3, rng=0)
        assert layer.output_shape((8,)) == (3,)
        with pytest.raises(ShapeError):
            layer.output_shape((7,))

    def test_weight_matrix_orientation(self):
        layer = Linear(6, 4, rng=0)
        assert layer.weight_matrix.shape == (4, 6)


class TestLowRankLinear:
    def test_full_rank_from_dense_is_exact(self):
        rng = np.random.default_rng(0)
        weight = rng.normal(size=(6, 9))
        bias = rng.normal(size=6)
        layer = LowRankLinear.from_dense(weight, bias)
        assert layer.rank == 6
        x = rng.normal(size=(5, 9))
        dense_out = x @ weight.T + bias
        assert np.allclose(layer.forward(x), dense_out)
        assert np.allclose(layer.effective_weight(), weight)

    def test_truncated_from_dense_is_best_approximation(self):
        rng = np.random.default_rng(1)
        weight = rng.normal(size=(8, 10))
        layer = LowRankLinear.from_dense(weight, None, rank=3)
        u, s, vt = np.linalg.svd(weight, full_matrices=False)
        best = (u[:, :3] * s[:3]) @ vt[:3]
        assert np.allclose(layer.effective_weight(), best)

    def test_rank_validation(self):
        with pytest.raises(RankError):
            LowRankLinear(4, 6, rank=5)
        with pytest.raises(RankError):
            LowRankLinear.from_dense(np.zeros((4, 6)), None, rank=5)

    def test_forward_shape_validation(self):
        layer = LowRankLinear(5, 3, rank=2, rng=0)
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((2, 4)))

    def test_gradients_match_numerical(self, grad_checker):
        rng = np.random.default_rng(2)
        layer = LowRankLinear(6, 4, rank=3, rng=3)
        x = rng.normal(size=(3, 6))
        target = rng.normal(size=(3, 4))

        def loss():
            return 0.5 * float(np.sum((layer.forward(x) - target) ** 2))

        out = layer.forward(x)
        layer.zero_grad()
        grad_in = layer.backward(out - target)
        assert np.allclose(layer.u.grad, grad_checker(loss, layer.u.data), atol=1e-6)
        assert np.allclose(layer.v.grad, grad_checker(loss, layer.v.data), atol=1e-6)
        assert np.allclose(layer.bias.grad, grad_checker(loss, layer.bias.data), atol=1e-6)
        assert np.allclose(grad_in, grad_checker(loss, x), atol=1e-6)

    def test_set_factors_updates_rank(self):
        layer = LowRankLinear(8, 5, rank=5, rng=0)
        u = np.zeros((5, 2))
        v = np.zeros((8, 2))
        layer.set_factors(u, v)
        assert layer.rank == 2
        assert layer.u.shape == (5, 2)
        assert layer.v.shape == (8, 2)

    def test_set_factors_validation(self):
        layer = LowRankLinear(8, 5, rank=5, rng=0)
        with pytest.raises(ShapeError):
            layer.set_factors(np.zeros((5, 2)), np.zeros((7, 2)))
        with pytest.raises(ShapeError):
            layer.set_factors(np.zeros((5, 2)), np.zeros((8, 3)))
        with pytest.raises(ShapeError):
            layer.set_factors(np.zeros(5), np.zeros((8, 1)))

    def test_set_factors_clears_masks(self):
        layer = LowRankLinear(8, 5, rank=5, rng=0)
        layer.u.set_mask(np.zeros((5, 5), dtype=bool))
        layer.set_factors(np.ones((5, 2)), np.ones((8, 2)))
        assert layer.u.mask is None

    def test_crossbar_area_saving_condition(self):
        # Factorized cell count NK + KM is smaller than NM exactly when
        # K < NM/(N+M)  (paper Eq. 2).
        n, m = 20, 25
        bound = n * m / (n + m)
        for k in range(1, min(n, m) + 1):
            factorized = n * k + k * m
            if k < bound:
                assert factorized < n * m
            if k > bound:
                assert factorized > n * m
