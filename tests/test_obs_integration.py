"""Integration tests: observability threaded through serving/graph/scheduler.

Acceptance contract (PR 10): instrumenting a run never changes its
numbers — obs-on and obs-off runs of one spec produce identical
fingerprints and results; two identical seeded serve-bench drills emit
identical trace records modulo timing fields; the live ``metrics``
snapshot's queue-wait percentiles agree *exactly* with a histogram
recomputed offline from ``traces.jsonl``; and scheduler node traces
carry job attribution plus queue-depth samples.
"""

import numpy as np
import pytest

from repro.experiments import ExperimentSpec, RunStore, execute_spec
from repro.hardware import (
    CrossbarLibrary,
    HardwareConfig,
    NetworkMapper,
    TechnologyParameters,
)
from repro.models import build_mlp
from repro.obs import (
    MetricsRegistry,
    Observability,
    Tracer,
    percentile,
    read_trace_file,
    strip_timing_fields,
    summarize_traces,
)
from repro.serving import ServingConfig, ServingRuntime
from repro.serving.bench import run_chaos_drill

FAST = dict(
    train_samples=120,
    test_samples=48,
    baseline_iterations=30,
    clip_iterations=20,
    clip_interval=10,
    deletion_iterations=20,
    finetune_iterations=10,
    record_interval=10,
    eval_interval=20,
    batch_size=24,
)

NOISY = HardwareConfig(bits=6, program_noise=0.02, fault_rate=0.001, adc_bits=8, seed=0)


def sweep_spec(**overrides) -> ExperimentSpec:
    spec = ExperimentSpec(
        kind="sweep",
        method="rank_clipping",
        workload="mlp",
        scale="tiny",
        scale_overrides=FAST,
        grid=(0.05, 0.3),
        name="obs-sweep",
    )
    return spec.with_updates(**overrides) if overrides else spec


def live_obs(tmp_path, tag):
    return Observability(
        metrics=MetricsRegistry(),
        tracer=Tracer(tmp_path / f"traces-{tag}.jsonl"),
    )


def tiny_runtime(obs):
    technology = TechnologyParameters(max_crossbar_rows=32, max_crossbar_cols=32)
    mapper = NetworkMapper(
        technology=technology, library=CrossbarLibrary(technology=technology)
    )
    config = ServingConfig(
        max_queue=64, max_batch=4, batch_window_s=0.002, workers=1,
        default_deadline_s=5.0,
    )
    runtime = ServingRuntime(config, mapper=mapper, obs=obs)
    runtime.register("mlp", build_mlp(16, [24], 4, rng=0, name="serve0"),
                     corner=NOISY, warm=True)
    return runtime


# ------------------------------------------------------------------ serving
class TestServingObservability:
    def test_stats_snapshot_is_deep_copied(self):
        runtime = tiny_runtime(None)
        try:
            before = runtime.stats()
            before["completed"] = 10 ** 9  # mutating the snapshot ...
            before["submitted"] = -1
            after = runtime.stats()
            assert after["completed"] == 0  # ... never touches the runtime
            assert after["submitted"] == 0
        finally:
            runtime.close(drain=True)

    def test_metrics_p99_agrees_exactly_with_offline_traces(self, tmp_path):
        obs = live_obs(tmp_path, "p99")
        runtime = tiny_runtime(obs)
        try:
            samples = np.random.default_rng(0).standard_normal((40, 16))
            handles = [runtime.submit("mlp", samples[i]) for i in range(40)]
            for handle in handles:
                handle.result(timeout=10.0)
        finally:
            runtime.close(drain=True)
            obs.tracer.close()
        snapshot = obs.metrics.snapshot()
        records = read_trace_file(obs.tracer.path)
        waits = [
            float(r["queue_wait_s"])
            for r in records
            if r.get("kind") == "request" and r.get("queue_wait_s") is not None
        ]
        hist = snapshot["histograms"]["serving.queue_wait_s"]
        assert hist["count"] == len(waits) == 40
        for q, key in ((50, "p50"), (95, "p95"), (99, "p99")):
            assert hist[key] == percentile(waits, q)
        # The offline summarizer agrees too (same percentile helper).
        summary = summarize_traces(records)
        assert summary["requests"]["queue_wait_s"]["p99"] == hist["p99"]

    def test_accounting_invariant_holds_in_metrics(self, tmp_path):
        obs = live_obs(tmp_path, "acct")
        runtime = tiny_runtime(obs)
        try:
            samples = np.random.default_rng(1).standard_normal((10, 16))
            for i in range(10):
                runtime.submit("mlp", samples[i]).result(timeout=10.0)
        finally:
            runtime.close(drain=True)
            obs.tracer.close()
        counters = obs.metrics.snapshot()["counters"]
        rejected = sum(
            v for k, v in counters.items() if k.startswith("serving.rejected.")
        )
        assert counters["serving.submitted"] == counters["serving.completed"] + rejected
        # The metrics counters mirror the runtime's own accounting dict.
        assert counters["serving.completed"] == runtime.stats()["completed"]

    def test_chaos_drill_traces_are_deterministic_modulo_timing(self, tmp_path):
        def run(tag):
            obs = live_obs(tmp_path, tag)
            summary = run_chaos_drill(emit=lambda line: None, obs=obs)
            obs.tracer.close()
            assert summary["ok"], summary
            return read_trace_file(obs.tracer.path)

        first, second = run("a"), run("b")
        assert len(first) == len(second) > 0
        stripped_a = [strip_timing_fields(r) for r in first]
        stripped_b = [strip_timing_fields(r) for r in second]
        assert stripped_a == stripped_b
        # ... and the stripped view still shows the whole drill arc:
        requests = [r for r in stripped_a if r["kind"] == "request"]
        assert any(r.get("degraded") for r in requests)
        states = {r.get("breaker_state") for r in requests}
        assert {"closed", "open", "half-open"} <= states

    def test_timing_fields_present_before_strip(self, tmp_path):
        obs = live_obs(tmp_path, "fields")
        runtime = tiny_runtime(obs)
        try:
            sample = np.random.default_rng(2).standard_normal(16)
            runtime.submit("mlp", sample).result(timeout=10.0)
        finally:
            runtime.close(drain=True)
            obs.tracer.close()
        [record] = [
            r for r in read_trace_file(obs.tracer.path) if r.get("kind") == "request"
        ]
        for field in ("queue_wait_s", "latency_s", "service_s", "deadline_slack_s"):
            assert field in record
        assert record["outcome"] == "completed"
        assert record["admission"] == "admitted"


# -------------------------------------------------------------------- graph
class TestGraphObservability:
    def test_obs_never_changes_results_and_adds_artifact_section(self, tmp_path):
        spec = sweep_spec()
        obs = live_obs(tmp_path, "graph")
        store_on = RunStore(tmp_path / "store-on")
        store_off = RunStore(tmp_path / "store-off")
        run_on = execute_spec(spec, store=store_on, obs=obs)
        obs.tracer.close()
        run_off = execute_spec(spec, store=store_off)
        assert run_on.fingerprint == run_off.fingerprint
        on = run_on.result.to_payload()
        off = run_off.result.to_payload()
        # Identical numbers: instrumentation must be observation-only.
        assert on == off
        artifact_on = store_on.load(run_on.fingerprint)
        artifact_off = store_off.load(run_off.fingerprint)
        section = artifact_on["observability"]
        assert set(section) == {"stage_timings", "nodes"}
        # Batch mode routes points through the sweep engine, so only the
        # nodes that ran via run_node before assembly are timed here.
        assert "baseline" in section["nodes"]
        assert section["stage_timings"].keys() >= {"baseline_s", "total_s"}
        assert "observability" not in artifact_off

    def test_node_traces_cover_every_node(self, tmp_path):
        from repro.experiments.graph import run_graph

        obs = live_obs(tmp_path, "nodes")
        store = RunStore(tmp_path / "store")
        # node_mode drives every node through run_node (the scheduler's
        # path), so each of the four nodes emits its own trace record.
        run = run_graph(
            sweep_spec(), store=store, obs=obs, node_mode=True,
            install_signals=False,
        )
        obs.tracer.close()
        nodes = [
            r for r in read_trace_file(obs.tracer.path) if r.get("kind") == "node"
        ]
        assert {r["node"] for r in nodes} == {
            "baseline", "point:0", "point:1", "assemble",
        }
        assert all(r["run"] == run.fingerprint for r in nodes)
        assert all(r["status"] == "done" for r in nodes)
        assert all(r["attempts"] == 1 and r["retries"] == 0 for r in nodes)
        counters = obs.metrics.snapshot()["counters"]
        assert counters["graph.nodes.done"] == 4


# ---------------------------------------------------------------- scheduler
class TestSchedulerObservability:
    def test_job_traces_carry_attribution_and_queue_depth(self, tmp_path):
        import threading

        from repro.scheduler import JobQueue, JobScheduler

        obs = live_obs(tmp_path, "sched")
        queue = JobQueue(tmp_path / "queue")
        store = RunStore(tmp_path / "runs")
        first = queue.submit(sweep_spec())
        second = queue.submit(sweep_spec(seed=7))
        scheduler = JobScheduler(queue, store, workers=1, poll_s=0.05, obs=obs)
        scheduler.run(threading.Event(), drain=True)
        obs.tracer.close()
        assert queue.state(first.job_id)["state"] == "done"
        assert queue.state(second.job_id)["state"] == "done"
        nodes = [
            r for r in read_trace_file(obs.tracer.path) if r.get("kind") == "node"
        ]
        jobs = {r.get("job") for r in nodes}
        assert jobs == {first.job_id, second.job_id}
        # With one worker, the second job waits queued while the first
        # runs, so its dispatches see a nonzero queue depth.
        depths = [r["queue_depth"] for r in nodes if r.get("job") == first.job_id]
        assert depths and max(depths) >= 1
        counters = obs.metrics.snapshot()["counters"]
        assert counters["scheduler.jobs.done"] == 2
