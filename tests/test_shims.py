"""Deprecation-shim tests: the legacy imperative entry points.

The old signatures (``run_table1``, ``run_table3``, ``run_figure3/5``,
``sweep_rank_clipping``, ``sweep_group_deletion``) must emit a
``DeprecationWarning`` and return results identical to the declarative
spec path (:func:`~repro.experiments.plan.execute_spec`), and the
serial / parallel / lockstep engine policies must stay bit-identical under
the new planner.
"""

import pytest

from repro.experiments import (
    ExperimentContext,
    SweepEngine,
    execute_spec,
    mlp_workload,
    run_figure3,
    run_figure5,
    run_table1,
    run_table3,
    spec_for_workload,
    sweep_group_deletion,
    sweep_rank_clipping,
    train_baseline,
    TINY,
)

FAST = dict(
    train_samples=120,
    test_samples=48,
    baseline_iterations=30,
    clip_iterations=20,
    clip_interval=10,
    deletion_iterations=20,
    finetune_iterations=10,
    record_interval=10,
    eval_interval=20,
    batch_size=24,
)


@pytest.fixture(scope="module")
def fast_workload():
    return mlp_workload(TINY.with_overrides(**FAST))


@pytest.fixture(scope="module")
def fast_baseline(fast_workload):
    network, accuracy, setup = train_baseline(fast_workload)
    return network, accuracy, setup


class TestShimEquivalence:
    """Old signatures return exactly what the spec path computes."""

    def test_run_table1(self, fast_workload, fast_baseline):
        network, accuracy, setup = fast_baseline
        with pytest.warns(DeprecationWarning, match="run_table1"):
            shim = run_table1(
                fast_workload,
                setup=setup,
                baseline_network=network,
                baseline_accuracy=accuracy,
            )
        spec = spec_for_workload("table1", fast_workload)
        declarative = execute_spec(spec)  # trains its own (deterministic) baseline
        assert shim.to_payload() == declarative.result.to_payload()

    def test_run_table3(self, fast_workload, fast_baseline):
        network, accuracy, setup = fast_baseline
        with pytest.warns(DeprecationWarning, match="run_table3"):
            shim = run_table3(
                fast_workload,
                strength=0.05,
                include_small_matrices=True,
                setup=setup,
                baseline_network=network,
                baseline_accuracy=accuracy,
            )
        spec = spec_for_workload(
            "table3", fast_workload, strength=0.05, include_small_matrices=True
        )
        declarative = execute_spec(spec)
        assert shim.to_payload() == declarative.result.to_payload()

    def test_run_figure3(self, fast_workload, fast_baseline):
        network, accuracy, setup = fast_baseline
        with pytest.warns(DeprecationWarning, match="run_figure3"):
            shim = run_figure3(
                fast_workload,
                setup=setup,
                baseline_network=network,
                baseline_accuracy=accuracy,
            )
        declarative = execute_spec(spec_for_workload("figure3", fast_workload))
        assert shim.to_payload() == declarative.result.to_payload()

    def test_run_figure5(self, fast_workload, fast_baseline):
        network, accuracy, setup = fast_baseline
        with pytest.warns(DeprecationWarning, match="run_figure5"):
            shim = run_figure5(
                fast_workload,
                strength=0.05,
                include_small_matrices=True,
                setup=setup,
                baseline_network=network,
            )
        spec = spec_for_workload(
            "figure5", fast_workload, strength=0.05, include_small_matrices=True
        )
        declarative = execute_spec(spec)
        assert shim.to_payload() == declarative.result.to_payload()

    def test_sweep_rank_clipping(self, fast_workload, fast_baseline):
        network, accuracy, setup = fast_baseline
        with pytest.warns(DeprecationWarning, match="sweep_rank_clipping"):
            shim = sweep_rank_clipping(
                fast_workload,
                [0.05, 0.3],
                setup=setup,
                baseline_network=network,
                baseline_accuracy=accuracy,
            )
        spec = spec_for_workload(
            "sweep", fast_workload, method="rank_clipping", grid=(0.05, 0.3)
        )
        declarative = execute_spec(spec)
        assert shim.to_payload() == declarative.result.to_payload()

    def test_sweep_group_deletion(self, fast_workload, fast_baseline):
        network, accuracy, setup = fast_baseline
        with pytest.warns(DeprecationWarning, match="sweep_group_deletion"):
            shim = sweep_group_deletion(
                fast_workload,
                [0.01, 0.08],
                include_small_matrices=True,
                setup=setup,
                baseline_network=network,
            )
        spec = spec_for_workload(
            "sweep",
            fast_workload,
            method="group_deletion",
            grid=(0.01, 0.08),
            include_small_matrices=True,
        )
        declarative = execute_spec(spec)
        assert shim.to_payload() == declarative.result.to_payload()

    def test_empty_grids_still_raise_value_error(self, fast_workload, fast_baseline):
        network, accuracy, setup = fast_baseline
        with pytest.raises(ValueError):
            sweep_rank_clipping(fast_workload, [], setup=setup, baseline_network=network)
        with pytest.raises(ValueError):
            sweep_group_deletion(fast_workload, [], setup=setup, baseline_network=network)


class TestEngineModesUnderPlanner:
    """Serial / parallel / lockstep stay bit-identical through the spec path."""

    def test_lambda_sweep_policies_bit_identical(self, fast_workload, fast_baseline):
        network, accuracy, setup = fast_baseline
        spec = spec_for_workload(
            "sweep",
            fast_workload,
            method="group_deletion",
            grid=(0.01, 0.08),
            include_small_matrices=True,
        )
        context = ExperimentContext(
            workload=fast_workload, setup=setup, baseline_network=network
        )
        serial = execute_spec(spec, context=context)
        parallel = execute_spec(spec.with_updates(workers=2), context=context)
        lockstep = execute_spec(spec.with_updates(mode="lockstep"), context=context)
        assert serial.result.points == parallel.result.points
        assert serial.result.points == lockstep.result.points
        assert (
            serial.result.baseline_accuracy
            == parallel.result.baseline_accuracy
            == lockstep.result.baseline_accuracy
        )

    def test_epsilon_sweep_workers_bit_identical(self, fast_workload, fast_baseline):
        network, accuracy, setup = fast_baseline
        spec = spec_for_workload(
            "sweep",
            fast_workload,
            method="rank_clipping",
            grid=(0.05, 0.3),
            engine=SweepEngine(per_point_seed=True),
        )
        context = ExperimentContext(
            workload=fast_workload,
            setup=setup,
            baseline_network=network,
            baseline_accuracy=accuracy,
        )
        serial = execute_spec(spec, context=context)
        parallel = execute_spec(spec.with_updates(workers=2), context=context)
        assert serial.result.points == parallel.result.points
