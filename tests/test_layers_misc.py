"""Tests for pooling, activation, flatten and dropout layers."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.nn.layers import (
    AvgPool2D,
    Dropout,
    Flatten,
    LeakyReLU,
    MaxPool2D,
    ReLU,
    Sigmoid,
    Tanh,
)


class TestMaxPool2D:
    def test_known_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        pool = MaxPool2D(2)
        out = pool.forward(x)
        assert np.array_equal(out[0, 0], np.array([[5.0, 7.0], [13.0, 15.0]]))

    def test_backward_routes_to_argmax(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        pool = MaxPool2D(2)
        pool.forward(x)
        grad = pool.backward(np.ones((1, 1, 2, 2)))
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        assert np.array_equal(grad[0, 0], expected)

    def test_gradient_matches_numerical(self, grad_checker):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 6, 6))
        target = rng.normal(size=(2, 3, 3, 3))
        pool = MaxPool2D(2)

        def loss():
            return 0.5 * float(np.sum((pool.forward(x) - target) ** 2))

        out = pool.forward(x)
        grad = pool.backward(out - target)
        assert np.allclose(grad, grad_checker(loss, x), atol=1e-6)

    def test_output_shape_and_validation(self):
        pool = MaxPool2D(2)
        assert pool.output_shape((4, 8, 8)) == (4, 4, 4)
        with pytest.raises(ShapeError):
            pool.output_shape((8, 8))
        with pytest.raises(ShapeError):
            pool.forward(np.zeros((2, 8, 8)))
        with pytest.raises(ShapeError):
            pool.backward(np.zeros((1, 1, 2, 2)))

    def test_overlapping_stride(self):
        pool = MaxPool2D(3, stride=2)
        assert pool.output_shape((1, 7, 7)) == (1, 3, 3)
        x = np.random.default_rng(1).normal(size=(1, 1, 7, 7))
        assert pool.forward(x).shape == (1, 1, 3, 3)


class TestAvgPool2D:
    def test_known_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        pool = AvgPool2D(2)
        out = pool.forward(x)
        assert np.allclose(out[0, 0], np.array([[2.5, 4.5], [10.5, 12.5]]))

    def test_backward_spreads_evenly(self):
        x = np.zeros((1, 1, 4, 4))
        pool = AvgPool2D(2)
        pool.forward(x)
        grad = pool.backward(np.ones((1, 1, 2, 2)) * 4.0)
        assert np.allclose(grad, np.ones((1, 1, 4, 4)))

    def test_gradient_matches_numerical(self, grad_checker):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 2, 4, 4))
        target = rng.normal(size=(1, 2, 2, 2))
        pool = AvgPool2D(2)

        def loss():
            return 0.5 * float(np.sum((pool.forward(x) - target) ** 2))

        out = pool.forward(x)
        grad = pool.backward(out - target)
        assert np.allclose(grad, grad_checker(loss, x), atol=1e-6)


class TestActivations:
    @pytest.mark.parametrize("layer_cls", [ReLU, LeakyReLU, Sigmoid, Tanh])
    def test_gradient_matches_numerical(self, layer_cls, grad_checker):
        rng = np.random.default_rng(3)
        layer = layer_cls()
        x = rng.normal(size=(3, 5))
        target = rng.normal(size=(3, 5))

        def loss():
            return 0.5 * float(np.sum((layer.forward(x) - target) ** 2))

        out = layer.forward(x)
        grad = layer.backward(out - target)
        assert np.allclose(grad, grad_checker(loss, x), atol=1e-6)

    def test_relu_values(self):
        out = ReLU().forward(np.array([[-2.0, 3.0]]))
        assert np.array_equal(out, np.array([[0.0, 3.0]]))

    def test_leaky_relu_slope(self):
        out = LeakyReLU(0.1).forward(np.array([[-10.0, 10.0]]))
        assert np.allclose(out, np.array([[-1.0, 10.0]]))
        with pytest.raises(ValueError):
            LeakyReLU(-0.1)

    def test_sigmoid_midpoint(self):
        assert Sigmoid().forward(np.array([[0.0]]))[0, 0] == pytest.approx(0.5)

    def test_tanh_range(self):
        out = Tanh().forward(np.array([[-100.0, 100.0]]))
        assert out[0, 0] == pytest.approx(-1.0)
        assert out[0, 1] == pytest.approx(1.0)

    def test_backward_before_forward_raises(self):
        with pytest.raises(ShapeError):
            ReLU().backward(np.ones((2, 2)))


class TestFlattenDropout:
    def test_flatten_roundtrip(self):
        x = np.arange(24.0).reshape(2, 3, 2, 2)
        flatten = Flatten()
        out = flatten.forward(x)
        assert out.shape == (2, 12)
        back = flatten.backward(out)
        assert np.array_equal(back, x)
        assert flatten.output_shape((3, 2, 2)) == (12,)

    def test_dropout_eval_is_identity(self):
        dropout = Dropout(0.5, rng=0)
        dropout.eval()
        x = np.ones((4, 10))
        assert np.array_equal(dropout.forward(x), x)

    def test_dropout_train_scales_and_masks(self):
        dropout = Dropout(0.5, rng=0)
        dropout.train()
        x = np.ones((200, 50))
        out = dropout.forward(x)
        kept = out[out > 0]
        assert np.allclose(kept, 2.0)  # inverted dropout scaling
        assert out.mean() == pytest.approx(1.0, abs=0.1)

    def test_dropout_backward_uses_same_mask(self):
        dropout = Dropout(0.5, rng=1)
        dropout.train()
        x = np.ones((10, 10))
        out = dropout.forward(x)
        grad = dropout.backward(np.ones_like(x))
        assert np.array_equal(grad > 0, out > 0)

    def test_dropout_rate_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.5)
