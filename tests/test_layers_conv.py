"""Tests for Conv2D and LowRankConv2D layers, including gradient checks."""

import numpy as np
import pytest

from repro.exceptions import RankError, ShapeError
from repro.nn.layers import Conv2D, LowRankConv2D


class TestConv2D:
    def test_output_shape(self):
        layer = Conv2D(3, 8, 5, padding=2, rng=0)
        assert layer.output_shape((3, 32, 32)) == (8, 32, 32)
        layer2 = Conv2D(1, 4, 5, rng=0)
        assert layer2.output_shape((1, 28, 28)) == (4, 24, 24)
        with pytest.raises(ShapeError):
            layer.output_shape((2, 32, 32))

    def test_forward_shape(self):
        layer = Conv2D(2, 6, 3, rng=0)
        x = np.random.default_rng(0).normal(size=(4, 2, 8, 8))
        assert layer.forward(x).shape == (4, 6, 6, 6)

    def test_forward_rejects_wrong_channels(self):
        layer = Conv2D(2, 6, 3, rng=0)
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((4, 3, 8, 8)))

    def test_known_convolution_value(self):
        layer = Conv2D(1, 1, 2, bias=False, rng=0)
        layer.weight.data = np.array([[[[1.0, 0.0], [0.0, 1.0]]]])
        x = np.arange(9.0).reshape(1, 1, 3, 3)
        out = layer.forward(x)
        # Each output is x[i,j] + x[i+1,j+1].
        expected = np.array([[[[0 + 4, 1 + 5], [3 + 7, 4 + 8]]]], dtype=float)
        assert np.allclose(out, expected)

    def test_weight_matrix_view(self):
        layer = Conv2D(3, 10, 5, rng=0)
        assert layer.weight_matrix.shape == (10, 75)
        assert layer.fan_in == 75

    def test_gradients_match_numerical(self, grad_checker):
        rng = np.random.default_rng(3)
        layer = Conv2D(2, 3, 3, stride=1, padding=1, rng=4)
        x = rng.normal(size=(2, 2, 5, 5))
        target = rng.normal(size=(2, 3, 5, 5))

        def loss():
            return 0.5 * float(np.sum((layer.forward(x) - target) ** 2))

        out = layer.forward(x)
        layer.zero_grad()
        grad_in = layer.backward(out - target)
        assert np.allclose(layer.weight.grad, grad_checker(loss, layer.weight.data), atol=1e-5)
        assert np.allclose(layer.bias.grad, grad_checker(loss, layer.bias.data), atol=1e-5)
        assert np.allclose(grad_in, grad_checker(loss, x), atol=1e-5)

    def test_stride_and_padding_geometry(self):
        layer = Conv2D(1, 2, 3, stride=2, padding=1, rng=0)
        assert layer.output_shape((1, 9, 9)) == (2, 5, 5)

    def test_invalid_padding(self):
        with pytest.raises(ValueError):
            Conv2D(1, 2, 3, padding=-1)


class TestLowRankConv2D:
    def test_full_rank_from_conv_is_exact(self):
        rng = np.random.default_rng(5)
        conv = Conv2D(2, 6, 3, padding=1, rng=6)
        lowrank = LowRankConv2D.from_conv(conv)
        x = rng.normal(size=(3, 2, 7, 7))
        assert np.allclose(lowrank.forward(x), conv.forward(x))
        assert np.allclose(lowrank.effective_weight(), conv.weight_matrix)
        assert np.allclose(lowrank.effective_kernel(), conv.weight.data)

    def test_truncation_is_best_rank_k(self):
        conv = Conv2D(3, 8, 3, rng=7)
        lowrank = LowRankConv2D.from_conv(conv, rank=4)
        w = conv.weight_matrix
        u, s, vt = np.linalg.svd(w, full_matrices=False)
        best = (u[:, :4] * s[:4]) @ vt[:4]
        assert np.allclose(lowrank.effective_weight(), best)

    def test_rank_bounds(self):
        with pytest.raises(RankError):
            LowRankConv2D(1, 4, 3, rank=10)  # fan_in = 9 < 10
        conv = Conv2D(1, 4, 3, rng=0)
        with pytest.raises(RankError):
            LowRankConv2D.from_conv(conv, rank=5)

    def test_gradients_match_numerical(self, grad_checker):
        rng = np.random.default_rng(8)
        layer = LowRankConv2D(2, 4, 3, rank=2, padding=1, rng=9)
        x = rng.normal(size=(2, 2, 5, 5))
        target = rng.normal(size=(2, 4, 5, 5))

        def loss():
            return 0.5 * float(np.sum((layer.forward(x) - target) ** 2))

        out = layer.forward(x)
        layer.zero_grad()
        grad_in = layer.backward(out - target)
        assert np.allclose(layer.u.grad, grad_checker(loss, layer.u.data), atol=1e-5)
        assert np.allclose(layer.v.grad, grad_checker(loss, layer.v.data), atol=1e-5)
        assert np.allclose(grad_in, grad_checker(loss, x), atol=1e-5)

    def test_set_factors(self):
        layer = LowRankConv2D(2, 4, 3, rng=0)
        layer.set_factors(np.ones((4, 2)), np.ones((18, 2)))
        assert layer.rank == 2
        with pytest.raises(ShapeError):
            layer.set_factors(np.ones((4, 2)), np.ones((17, 2)))

    def test_output_shape_matches_dense(self):
        dense = Conv2D(3, 6, 5, padding=2, rng=0)
        lowrank = LowRankConv2D(3, 6, 5, rank=4, padding=2, rng=0)
        assert dense.output_shape((3, 16, 16)) == lowrank.output_shape((3, 16, 16))
