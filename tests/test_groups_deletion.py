"""Tests for crossbar-aware groups and group connection deletion."""

import numpy as np
import pytest

from repro.core import (
    GroupConnectionDeleter,
    GroupDeletionConfig,
    apply_deletion,
    convert_to_lowrank,
    derive_layer_grouped_matrices,
    derive_matrix_groups,
    derive_network_groups,
    effective_threshold,
    flatten_groups,
    group_deletion_fractions,
    group_summary,
    matrix_routing_report,
    matrix_values,
)
from repro.exceptions import ConfigurationError
from repro.hardware import CrossbarLibrary, TechnologyParameters
from repro.models import build_mlp
from repro.nn import Conv2D, LowRankLinear
from repro.nn.parameter import Parameter


def small_library(max_size=8):
    """A library with a tiny maximum crossbar so small tests produce many tiles."""
    tech = TechnologyParameters(max_crossbar_rows=max_size, max_crossbar_cols=max_size)
    return CrossbarLibrary(technology=tech)


class TestDeriveGroups:
    def test_group_counts_match_wires(self):
        param = Parameter(np.ones((16, 8)))  # crossbar matrix 16x8
        grouped = derive_matrix_groups(
            param, name="m", layer_name="l", transpose=False, library=small_library()
        )
        # 2 tiles of 8x8 -> 16 row groups + 16 column groups = dense wires.
        assert len(grouped.row_groups()) == 16
        assert len(grouped.column_groups()) == 16
        assert len(grouped.groups) == grouped.plan.dense_wire_count()

    def test_every_weight_in_exactly_one_row_and_one_column_group(self):
        param = Parameter(np.zeros((16, 8)))
        grouped = derive_matrix_groups(
            param, name="m", layer_name="l", transpose=False, library=small_library()
        )
        row_cover = np.zeros((16, 8), dtype=int)
        col_cover = np.zeros((16, 8), dtype=int)
        for group in grouped.groups:
            target = row_cover if group.kind == "row" else col_cover
            target[group.index] += 1
        assert np.all(row_cover == 1)
        assert np.all(col_cover == 1)

    def test_transposed_groups_index_parameter_correctly(self):
        # Parameter is stored (out=6, rank=16); crossbar matrix is its transpose.
        param = Parameter(np.arange(6 * 16, dtype=float).reshape(6, 16))
        grouped = derive_matrix_groups(
            param, name="u", layer_name="l", transpose=True, library=small_library()
        )
        assert grouped.plan.matrix_rows == 16
        assert grouped.plan.matrix_cols == 6
        # A crossbar row group must select a column slice of the parameter.
        row_group = grouped.row_groups()[0]
        values = row_group.values()
        assert values.shape == (6,)
        # The group is crossbar row 0 = parameter column 0.
        assert np.array_equal(values, param.data[:, 0])

    def test_rejects_non_2d_parameter(self):
        with pytest.raises(ConfigurationError):
            derive_matrix_groups(
                Parameter(np.zeros((2, 2, 2))), name="m", layer_name="l", transpose=False
            )

    def test_layer_groups_lowrank_and_dense(self):
        layer = LowRankLinear(12, 10, rank=4, rng=0, name="fc1")
        matrices = derive_layer_grouped_matrices(layer, library=small_library())
        assert [m.name for m in matrices] == ["fc1_v", "fc1_u"]
        with pytest.raises(ConfigurationError):
            derive_layer_grouped_matrices(Conv2D(1, 2, 3, rng=0), library=small_library())

    def test_network_groups_skip_small_matrices_by_default(self):
        net = convert_to_lowrank(build_mlp(20, [16], 4, rng=0))
        grouped = derive_network_groups(net, library=small_library())
        # All selected matrices need more than one crossbar.
        assert all(not m.plan.is_single_crossbar for m in grouped)
        everything = derive_network_groups(
            net, library=small_library(), include_small_matrices=True
        )
        assert len(everything) >= len(grouped)

    def test_network_groups_layer_filter(self):
        net = convert_to_lowrank(build_mlp(20, [16], 4, rng=0))
        grouped = derive_network_groups(
            net, library=small_library(), layers=("fc1",), include_small_matrices=True
        )
        assert {m.layer_name for m in grouped} == {"fc1"}
        with pytest.raises(ConfigurationError):
            derive_network_groups(net, layers=("missing",))

    def test_flatten_and_summary(self):
        net = convert_to_lowrank(build_mlp(20, [16], 4, rng=0))
        grouped = derive_network_groups(
            net, library=small_library(), include_small_matrices=True
        )
        groups = flatten_groups(grouped)
        assert len(groups) == sum(len(m.groups) for m in grouped)
        summary = group_summary(grouped)
        for matrix in grouped:
            entry = summary[matrix.name]
            assert entry["row_groups"] + entry["column_groups"] == entry["dense_wires"]


class TestThresholdsAndDeletion:
    def _grouped_param(self, values):
        param = Parameter(np.asarray(values, dtype=float))
        return derive_matrix_groups(
            param, name="m", layer_name="l", transpose=False, library=small_library()
        )

    def test_effective_threshold_relative(self):
        grouped = self._grouped_param(np.ones((8, 4)))
        thr = effective_threshold(grouped, zero_threshold=1e-4, relative_threshold=0.5)
        max_norm = max(g.norm() for g in grouped.groups)
        assert thr == pytest.approx(0.5 * max_norm)
        assert effective_threshold(grouped, zero_threshold=1e-4, relative_threshold=0.0) == 1e-4

    def test_group_deletion_fraction_counts_groups(self):
        values = np.ones((8, 4))
        values[0, :] = 0.0  # one dead row group
        grouped = self._grouped_param(values)
        fraction = group_deletion_fractions(grouped, zero_threshold=1e-9, relative_threshold=0.0)
        assert fraction == pytest.approx(1 / 12)  # 8 rows + 4 cols = 12 groups

    def test_apply_deletion_zeroes_and_masks(self):
        values = np.ones((8, 4))
        values[2, :] = 1e-9
        grouped = self._grouped_param(values)
        counts = apply_deletion([grouped], zero_threshold=1e-6)
        assert counts["m"] == 1
        param = grouped.parameter
        assert np.all(param.data[2] == 0.0)
        assert param.mask is not None
        assert not param.mask[2].any()
        # Masked entries stay zero even if gradients try to move them.
        param.grad = np.ones_like(param.data)
        param.apply_mask()
        assert np.all(param.grad[2] == 0.0)

    def test_apply_deletion_relative(self):
        values = np.ones((8, 4))
        values[5, :] = 0.01
        grouped = self._grouped_param(values)
        counts = apply_deletion([grouped], zero_threshold=0.0, relative_threshold=0.05)
        assert counts["m"] == 1

    def test_routing_report_after_deletion(self):
        values = np.ones((8, 4))
        values[1, :] = 0.0
        grouped = self._grouped_param(values)
        report = matrix_routing_report(grouped)
        assert report.dense_wires == grouped.plan.dense_wire_count()
        assert report.remaining_wires == report.dense_wires - 1

    def test_matrix_values_orientation(self):
        layer = LowRankLinear(6, 5, rank=3, rng=0, name="fc")
        v_matrix, u_matrix = derive_layer_grouped_matrices(layer, library=small_library())
        assert matrix_values(v_matrix).shape == (6, 3)
        assert matrix_values(u_matrix).shape == (3, 5)
        assert np.array_equal(matrix_values(u_matrix), layer.u.data.T)


class TestGroupConnectionDeleter:
    def test_requires_groupable_matrices(self, mlp_trainer_factory):
        net = convert_to_lowrank(build_mlp(20, [16], 4, rng=0))
        deleter = GroupConnectionDeleter(GroupDeletionConfig(include_small_matrices=False))
        # With the default 64x64 library every matrix of this tiny MLP fits in
        # one crossbar, so there is nothing to delete.
        with pytest.raises(ConfigurationError):
            deleter.run(net, mlp_trainer_factory)

    def test_end_to_end_deletes_wires_and_recovers_accuracy(
        self, blob_data, mlp_trainer_factory
    ):
        dense = build_mlp(20, [24, 16], 4, rng=8)
        trainer = mlp_trainer_factory(dense)
        trainer.run(150)
        baseline = trainer.evaluate()
        network = convert_to_lowrank(dense)

        config = GroupDeletionConfig(
            strength=0.05,
            iterations=120,
            finetune_iterations=80,
            include_small_matrices=True,
            relative_threshold=0.05,
        )
        deleter = GroupConnectionDeleter(config, record_interval=30)
        result = deleter.run(network, mlp_trainer_factory)

        # Some wires must have been deleted somewhere.
        assert any(f < 1.0 for f in result.wire_fractions().values())
        assert sum(result.deleted_groups.values()) > 0
        # Deleted weights are exactly zero and masked.
        for matrix_name, report in result.routing_reports.items():
            assert 0.0 <= report.wire_fraction <= 1.0
        # Routing area is the square of the wire fraction.
        for name, wire in result.wire_fractions().items():
            assert result.routing_area_fractions()[name] == pytest.approx(wire**2)
        # Fine-tuning keeps accuracy near the baseline on this easy dataset.
        assert result.accuracy_after_finetune >= baseline - 0.1
        # The trace recorded the deletion progress.
        assert result.trace.iterations
        assert set(result.trace.final_deleted_fractions()) == set(result.routing_reports)
        assert result.mean_wire_fraction() <= 1.0
        assert result.mean_routing_area_fraction() <= result.mean_wire_fraction()

    def test_masks_survive_finetuning(self, blob_data, mlp_trainer_factory):
        dense = build_mlp(20, [24], 4, rng=9)
        mlp_trainer_factory(dense).run(100)
        network = convert_to_lowrank(dense)
        config = GroupDeletionConfig(
            strength=0.08,
            iterations=100,
            finetune_iterations=60,
            include_small_matrices=True,
        )
        result = GroupConnectionDeleter(config, record_interval=50).run(
            network, mlp_trainer_factory
        )
        # After fine-tuning, the deleted groups must still be exactly zero:
        # recompute the reports and compare with those captured at deletion time.
        grouped = GroupConnectionDeleter(config).derive_groups(network)
        for matrix in grouped:
            recomputed = matrix_routing_report(matrix)
            assert recomputed.remaining_wires <= result.routing_reports[matrix.name].remaining_wires
