"""Integration tests for the hardware-evaluation axis of the experiment pipeline.

Exercises the ``hardware`` section of :class:`ExperimentSpec` end to end:
spec validation / round-trips / fingerprinting, the hardware-eval stage of
``execute_spec`` over baseline and sweep kinds, per-point artifact payloads
with zero-recompute resume, the ``figure_hw`` / ``figure_hw_baseline``
presets, the compare/show renderings, and the CLI plumbing.
"""

import json

import pytest

from repro.exceptions import ExperimentError
from repro.experiments import (
    REGISTRY,
    ExperimentSpec,
    HardwareAccuracySeries,
    RunStore,
    execute_spec,
    point_fingerprint,
    result_from_payload,
)
from repro.experiments.cli import main as cli_main
from repro.experiments.store import compare_artifacts, hardware_summary, render_artifact
from repro.hardware.sim import HardwareConfig

CORNERS = (HardwareConfig.ideal(), HardwareConfig(bits=4, program_noise=0.05))
LABELS = [config.label for config in CORNERS]


def hw_sweep_spec(**overrides):
    spec = ExperimentSpec(
        kind="sweep",
        method="group_deletion",
        workload="mlp",
        scale="tiny",
        grid=(0.04,),
        hardware=CORNERS,
        name="hw-sweep",
    )
    return spec.with_updates(**overrides) if overrides else spec


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    return RunStore(tmp_path_factory.mktemp("hw-store"))


@pytest.fixture(scope="module")
def sweep_run(store):
    return execute_spec(hw_sweep_spec(), store=store)


@pytest.fixture(scope="module")
def baseline_run(store):
    spec = ExperimentSpec(
        kind="baseline", workload="mlp", scale="tiny", hardware=CORNERS, name="hw-base"
    )
    return execute_spec(spec, store=store)


# ------------------------------------------------------------------- spec
class TestSpecHardwareSection:
    def test_round_trip_through_dicts_and_json(self):
        spec = hw_sweep_spec()
        rebuilt = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec
        assert rebuilt.hardware == CORNERS

    def test_mappings_are_normalized(self):
        spec = hw_sweep_spec(hardware=({"bits": 4}, {"bits": 8, "seed": 1}))
        assert all(isinstance(config, HardwareConfig) for config in spec.hardware)
        assert [config.label for config in spec.hardware] == ["b4", "b8-s1"]

    def test_empty_hardware_keeps_legacy_fingerprint(self):
        with_field = hw_sweep_spec(hardware=())
        assert "hardware" not in with_field.canonical()
        assert "hardware" in hw_sweep_spec().canonical()

    def test_hardware_changes_spec_and_point_fingerprints(self):
        plain = hw_sweep_spec(hardware=())
        hw = hw_sweep_spec()
        assert plain.fingerprint() != hw.fingerprint()
        assert point_fingerprint(plain, 0, 0.04) != point_fingerprint(hw, 0, 0.04)
        # Different corners → different points; same corners → same points.
        other = hw_sweep_spec(hardware=(HardwareConfig(bits=2),))
        assert point_fingerprint(hw, 0, 0.04) != point_fingerprint(other, 0, 0.04)
        assert point_fingerprint(hw, 0, 0.04) == point_fingerprint(
            hw_sweep_spec(name="renamed"), 0, 0.04
        )

    def test_unsupported_kind_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentSpec(kind="table1", hardware=CORNERS)
        with pytest.raises(ExperimentError):
            ExperimentSpec(kind="headline", hardware=CORNERS)

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ExperimentError):
            hw_sweep_spec(hardware=(HardwareConfig(bits=4), HardwareConfig(bits=4)))

    def test_presets_registered(self):
        assert "figure_hw" in REGISTRY
        assert "figure_hw_baseline" in REGISTRY
        spec = REGISTRY.get("figure_hw", workload="mlp", scale="tiny")
        assert spec.hardware
        assert spec.kind == "sweep"
        base = REGISTRY.get("figure_hw_baseline")
        assert [c.label for c in base.hardware] == [c.label for c in spec.hardware]


# -------------------------------------------------------------- execution
class TestHardwareExecution:
    def test_sweep_points_carry_hardware_payloads(self, sweep_run):
        point = sweep_run.result.points[0]
        assert point.hardware is not None
        assert sorted(point.hardware) == sorted(LABELS)
        assert all(0.0 <= value <= 1.0 for value in point.hardware.values())
        assert "hardware_s" in sweep_run.timings

    def test_ideal_corner_matches_software_accuracy(self, sweep_run, baseline_run):
        point = sweep_run.result.points[0]
        assert point.hardware["ideal"] == pytest.approx(point.accuracy, abs=1e-12)
        baseline = baseline_run.result
        assert baseline.hardware["ideal"] == pytest.approx(baseline.accuracy, abs=1e-12)

    def test_artifact_stores_per_point_hardware(self, store, sweep_run):
        artifact = store.load(sweep_run.fingerprint)
        (entry,) = artifact["points"].values()
        assert sorted(entry["payload"]["hardware"]) == sorted(LABELS)
        rebuilt = result_from_payload(sweep_run.spec, artifact["result"])
        assert rebuilt.points[0].hardware == sweep_run.result.points[0].hardware

    def test_resume_is_zero_recompute(self, store, sweep_run):
        again = execute_spec(hw_sweep_spec(), store=store)
        assert again.computed_points == 0
        assert again.reused_points == 1
        assert again.result.points[0].hardware == sweep_run.result.points[0].hardware

    def test_point_resume_across_grids(self, store, sweep_run):
        wider = hw_sweep_spec(grid=(0.04, 0.08), name="hw-sweep-wide")
        run = execute_spec(wider, store=store)
        assert run.computed_points == 1  # only λ=0.08 trains
        assert run.result.points[0].hardware == sweep_run.result.points[0].hardware

    def test_software_only_points_are_not_reused_for_hardware(self, store):
        # A hardware spec must not resume from a software-only point (its
        # payload has no simulated accuracies) — the fingerprints differ.
        plain = hw_sweep_spec(hardware=(), name="plain-sweep")
        run = execute_spec(plain, store=store)
        assert run.computed_points == 1
        assert run.result.points[0].hardware is None

    def test_baseline_result_round_trips(self, baseline_run):
        payload = baseline_run.result.to_payload()
        rebuilt = type(baseline_run.result).from_payload(payload)
        assert rebuilt.hardware == baseline_run.result.hardware
        assert "simulated hardware accuracy" in rebuilt.format_table()


# ------------------------------------------------------------- rendering
class TestRendering:
    def test_sweep_table_has_hardware_columns(self, sweep_run):
        table = sweep_run.result.format_table()
        for label in LABELS:
            assert f"hw {label}" in table

    def test_hardware_accuracy_series(self, sweep_run, baseline_run):
        series = HardwareAccuracySeries.from_result(sweep_run.result)
        assert series.labels == LABELS
        assert list(series.rows) == ["lambda=0.04"]
        assert len(series.series("ideal")) == 1
        base_series = HardwareAccuracySeries.from_result(baseline_run.result)
        assert list(base_series.rows) == ["baseline"]
        assert "simulated device corners" in series.format_series()

    def test_hardware_summary_and_compare(self, store, sweep_run, baseline_run):
        sweep_artifact = store.load(sweep_run.fingerprint)
        base_artifact = store.load(baseline_run.fingerprint)
        assert sorted(hardware_summary(sweep_artifact)) == sorted(LABELS)
        assert sorted(hardware_summary(base_artifact)) == sorted(LABELS)
        text = compare_artifacts(base_artifact, sweep_artifact)
        assert "simulated hardware accuracy" in text
        for label in LABELS:
            assert label in text

    def test_render_artifact_mentions_corners(self, store, sweep_run):
        text = render_artifact(store.load(sweep_run.fingerprint))
        assert "hardware corners" in text

    def test_compare_renders_each_corner_once(self, store, sweep_run):
        # Hardware accuracies live in the dedicated table only — the generic
        # flattened-metric table must not list the same corners again.
        artifact = store.load(sweep_run.fingerprint)
        text = compare_artifacts(artifact, artifact)
        for label in LABELS:
            assert text.count(label) == 1

    def test_summary_empty_without_hardware(self):
        assert hardware_summary({"result": {"points": [{"accuracy": 0.5}]}}) == {}


# -------------------------------------------------------------------- CLI
class TestCli:
    def test_run_show_compare(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        hardware = json.dumps([config.as_dict() for config in CORNERS])
        assert (
            cli_main(
                [
                    "run",
                    "figure_hw",
                    "--workload",
                    "mlp",
                    "--scale",
                    "tiny",
                    "--hardware",
                    hardware,
                    "--store",
                    store_dir,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "hw ideal" in out
        assert (
            cli_main(
                [
                    "run",
                    "figure_hw_baseline",
                    "--workload",
                    "mlp",
                    "--scale",
                    "tiny",
                    "--hardware",
                    hardware,
                    "--store",
                    store_dir,
                    "--quiet",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert cli_main(["show", "figure_hw", "--store", store_dir]) == 0
        assert "hardware corners" in capsys.readouterr().out
        assert (
            cli_main(
                ["compare", "figure_hw_baseline", "figure_hw", "--store", store_dir]
            )
            == 0
        )
        assert "simulated hardware accuracy" in capsys.readouterr().out

    def test_hardware_flag_rejects_bad_json(self, tmp_path):
        assert (
            cli_main(
                [
                    "run",
                    "baseline",
                    "--hardware",
                    "{not json",
                    "--no-store",
                ]
            )
            == 2
        )

    def test_hardware_flag_reads_file(self, tmp_path, capsys):
        config_file = tmp_path / "hw.json"
        config_file.write_text(json.dumps([{"bits": 4}]))
        assert (
            cli_main(
                [
                    "run",
                    "baseline",
                    "--scale",
                    "tiny",
                    "--hardware",
                    str(config_file),
                    "--no-store",
                ]
            )
            == 0
        )
        assert "b4" in capsys.readouterr().out
