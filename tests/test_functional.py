"""Tests for repro.nn.functional (im2col/col2im, softmax, one-hot)."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.nn import functional as F


class TestConvOutputSize:
    def test_basic(self):
        assert F.conv_output_size(28, 5, 1, 0) == 24
        assert F.conv_output_size(32, 5, 1, 2) == 32
        assert F.conv_output_size(8, 2, 2, 0) == 4

    def test_invalid_geometry_raises(self):
        with pytest.raises(ShapeError):
            F.conv_output_size(3, 5, 1, 0)


class TestIm2Col:
    def test_identity_kernel_one_by_one(self):
        x = np.arange(2 * 3 * 4 * 4, dtype=float).reshape(2, 3, 4, 4)
        cols, oh, ow = F.im2col(x, 1, 1, stride=1, padding=0)
        assert (oh, ow) == (4, 4)
        assert cols.shape == (2 * 16, 3)
        # Row 0 is the top-left pixel of image 0 across channels.
        assert np.array_equal(cols[0], x[0, :, 0, 0])

    def test_shapes_with_padding_and_stride(self):
        x = np.random.default_rng(0).normal(size=(2, 3, 8, 8))
        cols, oh, ow = F.im2col(x, 3, 3, stride=2, padding=1)
        assert (oh, ow) == (4, 4)
        assert cols.shape == (2 * 16, 27)

    def test_matches_direct_convolution(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 2, 6, 6))
        w = rng.normal(size=(4, 2, 3, 3))
        cols, oh, ow = F.im2col(x, 3, 3, stride=1, padding=0)
        out = (cols @ w.reshape(4, -1).T).reshape(2, oh, ow, 4).transpose(0, 3, 1, 2)
        # Direct (slow) convolution for reference.
        ref = np.zeros_like(out)
        for n in range(2):
            for f in range(4):
                for i in range(oh):
                    for j in range(ow):
                        ref[n, f, i, j] = np.sum(x[n, :, i : i + 3, j : j + 3] * w[f])
        assert np.allclose(out, ref)

    def test_rejects_non_4d(self):
        with pytest.raises(ShapeError):
            F.im2col(np.zeros((3, 4, 4)), 2, 2)


class TestCol2Im:
    def test_adjoint_of_im2col(self):
        # <im2col(x), C> == <x, col2im(C)> for arbitrary C (adjoint property),
        # which is exactly the correctness condition for the conv backward pass.
        rng = np.random.default_rng(2)
        x = rng.normal(size=(2, 3, 7, 7))
        cols, oh, ow = F.im2col(x, 3, 3, stride=2, padding=1)
        c = rng.normal(size=cols.shape)
        lhs = float(np.sum(cols * c))
        back = F.col2im(c, x.shape, 3, 3, stride=2, padding=1)
        rhs = float(np.sum(x * back))
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_roundtrip_counts_overlaps(self):
        x = np.ones((1, 1, 4, 4))
        cols, _, _ = F.im2col(x, 2, 2, stride=1, padding=0)
        back = F.col2im(cols, x.shape, 2, 2, stride=1, padding=0)
        # Interior pixels are covered by 4 windows, corners by 1.
        assert back[0, 0, 0, 0] == 1
        assert back[0, 0, 1, 1] == 4

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            F.col2im(np.zeros((5, 5)), (1, 1, 4, 4), 2, 2)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        logits = np.random.default_rng(0).normal(size=(5, 7))
        probs = F.softmax(logits, axis=1)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs >= 0)

    def test_shift_invariance(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(F.softmax(logits), F.softmax(logits + 100.0))

    def test_no_overflow_for_large_logits(self):
        probs = F.softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(1.0)

    def test_log_softmax_consistent(self):
        logits = np.random.default_rng(1).normal(size=(4, 6))
        assert np.allclose(F.log_softmax(logits), np.log(F.softmax(logits)))


class TestOneHotAndActivations:
    def test_one_hot_basic(self):
        encoded = F.one_hot(np.array([0, 2, 1]), 3)
        assert np.array_equal(encoded, np.array([[1, 0, 0], [0, 0, 1], [0, 1, 0]], dtype=float))

    def test_one_hot_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([0, 5]), 3)

    def test_one_hot_rejects_2d(self):
        with pytest.raises(ShapeError):
            F.one_hot(np.zeros((2, 2), dtype=int), 3)

    def test_relu(self):
        assert np.array_equal(F.relu(np.array([-1.0, 0.0, 2.0])), np.array([0.0, 0.0, 2.0]))

    def test_sigmoid_range_and_symmetry(self):
        x = np.array([-500.0, -1.0, 0.0, 1.0, 500.0])
        s = F.sigmoid(x)
        assert np.all((s >= 0) & (s <= 1))
        assert s[2] == pytest.approx(0.5)
        assert s[1] + s[3] == pytest.approx(1.0)
