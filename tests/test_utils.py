"""Tests for repro.utils (rng, validation, logging, serialization) and exceptions."""

import logging

import numpy as np
import pytest

from repro import exceptions
from repro.exceptions import ReproError, ShapeError
from repro.utils.logging import get_logger, set_verbosity
from repro.utils.rng import as_rng, derive_seed, spawn_rng, temporary_seed
from repro.utils.serialization import load_json, load_state_dict, save_json, save_state_dict
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive_int,
    check_probability,
    check_same_length,
    ensure_2d,
    ensure_4d,
)


class TestExceptions:
    def test_all_exceptions_derive_from_repro_error(self):
        for name in dir(exceptions):
            obj = getattr(exceptions, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not ReproError:
                if obj.__module__ == "repro.exceptions":
                    assert issubclass(obj, ReproError)

    def test_repro_error_is_exception(self):
        assert issubclass(ReproError, Exception)


class TestRng:
    def test_as_rng_from_int_is_deterministic(self):
        a = as_rng(42).integers(0, 1000, 10)
        b = as_rng(42).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_as_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_as_rng_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_spawn_rng_children_differ(self):
        parent = as_rng(0)
        children = spawn_rng(parent, 3)
        draws = [c.integers(0, 10**9) for c in children]
        assert len(set(draws)) == 3

    def test_spawn_rng_rejects_zero_count(self):
        with pytest.raises(ValueError):
            spawn_rng(as_rng(0), 0)

    def test_derive_seed_in_range(self):
        seed = derive_seed(as_rng(5))
        assert 0 <= seed < 2**63

    def test_temporary_seed_restores_state(self):
        np.random.seed(123)
        before = np.random.get_state()[1][:5].copy()
        with temporary_seed(999):
            np.random.random(10)
        after = np.random.get_state()[1][:5]
        assert np.array_equal(before, after)


class TestValidation:
    def test_check_positive_int_accepts_valid(self):
        assert check_positive_int(3, "x") == 3

    def test_check_positive_int_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "x")

    def test_check_positive_int_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_check_positive_int_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(2.0, "x")

    def test_check_non_negative(self):
        assert check_non_negative(0.0, "x") == 0.0
        with pytest.raises(ValueError):
            check_non_negative(-0.1, "x")
        with pytest.raises(ValueError):
            check_non_negative(float("nan"), "x")

    def test_check_fraction_bounds(self):
        assert check_fraction(0.0, "x") == 0.0
        assert check_fraction(1.0, "x") == 1.0
        with pytest.raises(ValueError):
            check_fraction(1.5, "x")
        with pytest.raises(ValueError):
            check_fraction(0.0, "x", inclusive=False)

    def test_check_probability_alias(self):
        assert check_probability(0.5, "p") == 0.5

    def test_ensure_2d(self):
        out = ensure_2d([[1, 2], [3, 4]], "m")
        assert out.shape == (2, 2)
        with pytest.raises(ShapeError):
            ensure_2d(np.zeros(3), "m")
        with pytest.raises(ShapeError):
            ensure_2d(np.zeros((0, 3)), "m")

    def test_ensure_4d(self):
        assert ensure_4d(np.zeros((1, 2, 3, 4)), "x").shape == (1, 2, 3, 4)
        with pytest.raises(ShapeError):
            ensure_4d(np.zeros((2, 3)), "x")

    def test_check_same_length(self):
        check_same_length([1, 2], [3, 4], "a", "b")
        with pytest.raises(ValueError):
            check_same_length([1], [1, 2], "a", "b")


class TestLogging:
    def test_get_logger_namespacing(self):
        assert get_logger().name == "repro"
        assert get_logger("nn").name == "repro.nn"
        assert get_logger("repro.core").name == "repro.core"

    def test_set_verbosity_levels(self):
        set_verbosity("debug")
        assert get_logger().level == logging.DEBUG
        set_verbosity("silent")
        assert get_logger().level > logging.CRITICAL

    def test_set_verbosity_rejects_unknown(self):
        with pytest.raises(ValueError):
            set_verbosity("chatty")


class TestSerialization:
    def test_state_dict_roundtrip(self, tmp_path):
        state = {"a.weight": np.arange(6.0).reshape(2, 3), "b.bias": np.zeros(4)}
        path = save_state_dict(tmp_path / "model.npz", state)
        loaded = load_state_dict(path)
        assert set(loaded) == set(state)
        for key in state:
            assert np.array_equal(loaded[key], state[key])

    def test_json_roundtrip_with_numpy(self, tmp_path):
        payload = {
            "acc": np.float64(0.75),
            "ranks": {"conv1": np.int64(5)},
            "curve": np.array([1.0, 0.5]),
            "nested": [np.float32(1.5), {"k": np.bool_(True)}],
        }
        path = save_json(tmp_path / "out" / "result.json", payload)
        loaded = load_json(path)
        assert loaded["acc"] == pytest.approx(0.75)
        assert loaded["ranks"]["conv1"] == 5
        assert loaded["curve"] == [1.0, 0.5]
        assert loaded["nested"][1]["k"] is True
