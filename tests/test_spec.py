"""Tests for the declarative experiment spec layer.

Covers the ``ExperimentScale.with_overrides`` validation fix, spec
validation, dict/JSON round-tripping, fingerprint stability (including
across processes), point-fingerprint invariance to execution policy, and the
planner's expansion.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.exceptions import ConfigurationError, ExperimentError
from repro.experiments import (
    TINY,
    ExperimentSpec,
    SweepEngine,
    baseline_fingerprint,
    build_plan,
    mlp_workload,
    point_fingerprint,
    spec_for_workload,
)

_SRC = Path(__file__).resolve().parents[1] / "src"

FAST = dict(train_samples=120, test_samples=48, baseline_iterations=30)


class TestScaleOverrides:
    def test_known_overrides_apply(self):
        scale = TINY.with_overrides(train_samples=10, seed=3)
        assert scale.train_samples == 10
        assert scale.seed == 3
        assert scale.name == TINY.name

    def test_unknown_key_raises_value_error_listing_fields(self):
        """Regression: unknown keys used to surface as an opaque TypeError."""
        with pytest.raises(ValueError) as excinfo:
            TINY.with_overrides(train_sample=10)  # typo'd field
        message = str(excinfo.value)
        assert "train_sample" in message
        assert "train_samples" in message  # the valid fields are listed
        assert "batch_size" in message

    def test_overrides_still_validate(self):
        with pytest.raises(ConfigurationError):
            TINY.with_overrides(train_samples=0)


class TestSpecValidation:
    def test_unknown_kind(self):
        with pytest.raises(ExperimentError):
            ExperimentSpec(kind="table9")

    def test_sweep_requires_grid(self):
        with pytest.raises(ExperimentError):
            ExperimentSpec(kind="sweep")

    def test_non_sweep_forbids_grid(self):
        with pytest.raises(ExperimentError):
            ExperimentSpec(kind="table1", grid=(0.1,))

    def test_method_must_match_kind(self):
        with pytest.raises(ExperimentError):
            ExperimentSpec(kind="table1", method="group_deletion")

    def test_default_method_per_kind(self):
        assert ExperimentSpec(kind="table1").method == "rank_clipping"
        assert ExperimentSpec(kind="table3").method == "group_deletion"
        assert ExperimentSpec(kind="sweep", grid=(0.1,)).method == "rank_clipping"
        assert ExperimentSpec(kind="headline").method == "baseline"

    def test_value_validation(self):
        with pytest.raises(ExperimentError):
            ExperimentSpec(kind="table1", tolerance=1.5)
        with pytest.raises(ExperimentError):
            ExperimentSpec(kind="table3", strength=-0.1)
        with pytest.raises(ExperimentError):
            ExperimentSpec(kind="table1", lowrank_method="qr")

    def test_name_defaults_to_kind(self):
        assert ExperimentSpec(kind="figure3").name == "figure3"
        assert ExperimentSpec(kind="figure3", name="mine").name == "mine"

    def test_scale_overrides_mapping_normalized(self):
        spec = ExperimentSpec(kind="baseline", scale_overrides={"seed": 3, "batch_size": 8})
        assert spec.scale_overrides == (("batch_size", 8), ("seed", 3))

    def test_engine_mapping_coerced(self):
        spec = ExperimentSpec(kind="baseline", engine={"workers": 2, "mode": "points"})
        assert isinstance(spec.engine, SweepEngine)
        assert spec.engine.workers == 2


class TestRoundTrip:
    def specs(self):
        return [
            ExperimentSpec(kind="table1", workload="lenet", scale="small"),
            ExperimentSpec(
                kind="sweep",
                method="group_deletion",
                workload="mlp",
                scale="tiny",
                scale_overrides=FAST,
                grid=(0.01, 0.08),
                include_small_matrices=True,
                seed=7,
                engine=SweepEngine(workers=2, per_point_seed=True),
                name="roundtrip",
            ),
            ExperimentSpec(kind="headline"),
        ]

    def test_to_dict_from_dict_equality(self):
        for spec in self.specs():
            assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        for spec in self.specs():
            assert ExperimentSpec.from_dict(json.loads(spec.to_json())) == spec

    def test_from_dict_unknown_field(self):
        payload = ExperimentSpec(kind="table1").to_dict()
        payload["grids"] = [0.1]
        with pytest.raises(ExperimentError) as excinfo:
            ExperimentSpec.from_dict(payload)
        assert "grids" in str(excinfo.value)

    def test_from_dict_requires_kind(self):
        with pytest.raises(ExperimentError):
            ExperimentSpec.from_dict({"workload": "mlp"})

    def test_engine_round_trip(self):
        engine = SweepEngine(workers=3, mode="lockstep", per_point_seed=True)
        assert SweepEngine.from_dict(engine.as_dict()) == engine
        with pytest.raises(ConfigurationError):
            SweepEngine.from_dict({"turbo": True})


class TestFingerprints:
    def test_name_is_excluded(self):
        spec = ExperimentSpec(kind="table1")
        renamed = spec.with_updates(name="other")
        assert spec.fingerprint() == renamed.fingerprint()

    def test_content_changes_fingerprint(self):
        spec = ExperimentSpec(kind="sweep", grid=(0.1, 0.2))
        assert spec.fingerprint() != spec.with_updates(grid=(0.1, 0.3)).fingerprint()
        assert spec.fingerprint() != spec.with_updates(workload="lenet").fingerprint()
        assert spec.fingerprint() != spec.with_updates(workers=2).fingerprint()

    def test_stable_across_processes(self):
        """The fingerprint must be a pure content hash, not id/hash-seeded."""
        spec = ExperimentSpec(
            kind="sweep",
            method="group_deletion",
            workload="mlp",
            scale="tiny",
            scale_overrides={"train_samples": 99},
            grid=(0.01, 0.05),
        )
        code = (
            "import json, sys\n"
            "from repro.experiments import ExperimentSpec, point_fingerprint\n"
            "spec = ExperimentSpec.from_dict(json.loads(sys.argv[1]))\n"
            "print(spec.fingerprint())\n"
            "print(point_fingerprint(spec, 1, 0.05))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(_SRC) + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = "12345"  # prove hash randomization is irrelevant
        result = subprocess.run(
            [sys.executable, "-c", code, json.dumps(spec.to_dict())],
            capture_output=True,
            text=True,
            check=True,
            env=env,
        )
        child_spec_fp, child_point_fp = result.stdout.split()
        assert child_spec_fp == spec.fingerprint()
        assert child_point_fp == point_fingerprint(spec, 1, 0.05)

    def test_point_fingerprint_ignores_execution_policy(self):
        """workers/mode/batching are bit-identical — points must be shareable."""
        base = ExperimentSpec(kind="sweep", method="group_deletion", grid=(0.01, 0.08))
        for overrides in (
            dict(workers=4),
            dict(mode="lockstep"),
            dict(batched_eval=False),
            dict(memoize_routing=False),
        ):
            other = base.with_updates(**overrides)
            assert point_fingerprint(base, 0, 0.01) == point_fingerprint(other, 0, 0.01)
        # ...but result-affecting engine fields do participate.
        seeded = base.with_updates(per_point_seed=True)
        assert point_fingerprint(base, 0, 0.01) != point_fingerprint(seeded, 0, 0.01)

    def test_point_fingerprint_ignores_grid_context(self):
        """A value shared by two grids must map to one point artifact."""
        narrow = ExperimentSpec(kind="sweep", grid=(0.1, 0.2))
        wide = ExperimentSpec(kind="sweep", grid=(0.1, 0.2, 0.4))
        assert point_fingerprint(narrow, 1, 0.2) == point_fingerprint(wide, 1, 0.2)
        assert point_fingerprint(narrow, 0, 0.1) != point_fingerprint(narrow, 1, 0.2)

    def test_point_index_only_matters_with_per_point_seed(self):
        spec = ExperimentSpec(kind="sweep", grid=(0.1, 0.2))
        assert point_fingerprint(spec, 0, 0.2) == point_fingerprint(spec, 1, 0.2)
        seeded = spec.with_updates(per_point_seed=True)
        assert point_fingerprint(seeded, 0, 0.2) != point_fingerprint(seeded, 1, 0.2)

    def test_lambda_sweep_points_ignore_irrelevant_knobs(self):
        spec = ExperimentSpec(kind="sweep", method="group_deletion", grid=(0.05,))
        assert point_fingerprint(spec, 0, 0.05) == point_fingerprint(
            spec.with_updates(strength=0.9), 0, 0.05
        )
        # The shared clipping phase's ε and low-rank backend do matter.
        assert point_fingerprint(spec, 0, 0.05) != point_fingerprint(
            spec.with_updates(tolerance=0.1), 0, 0.05
        )
        assert point_fingerprint(spec, 0, 0.05) != point_fingerprint(
            spec.with_updates(lowrank_method="svd"), 0, 0.05
        )

    def test_epsilon_sweep_points_ignore_tolerance_field(self):
        """Each ε comes from the grid; the spec's tolerance field is unread."""
        spec = ExperimentSpec(kind="sweep", method="rank_clipping", grid=(0.05,))
        assert point_fingerprint(spec, 0, 0.05) == point_fingerprint(
            spec.with_updates(tolerance=0.5), 0, 0.05
        )
        # The clipping backend does matter for ε points.
        assert point_fingerprint(spec, 0, 0.05) != point_fingerprint(
            spec.with_updates(lowrank_method="svd"), 0, 0.05
        )

    def test_baseline_fingerprint_scope(self):
        spec = ExperimentSpec(kind="sweep", grid=(0.1,))
        assert baseline_fingerprint(spec) == baseline_fingerprint(
            spec.with_updates(grid=(0.4,), tolerance=0.2, workers=3)
        )
        assert baseline_fingerprint(spec) != baseline_fingerprint(
            spec.with_updates(seed=9)
        )
        assert baseline_fingerprint(spec) != baseline_fingerprint(
            spec.with_updates(workload="lenet")
        )


class TestWorkloadAdapters:
    def test_spec_for_workload_preset_scale(self):
        workload = mlp_workload("tiny")
        spec = spec_for_workload("table1", workload)
        assert spec.workload == "mlp-blobs"
        assert spec.scale == "tiny"
        assert spec.scale_overrides == ()
        assert spec.resolved_scale() == TINY

    def test_spec_for_workload_overridden_scale(self):
        scale = TINY.with_overrides(train_samples=99, seed=5)
        workload = mlp_workload(scale)
        spec = spec_for_workload("baseline", workload)
        assert dict(spec.scale_overrides) == {"train_samples": 99, "seed": 5}
        assert spec.resolved_scale() == scale

    def test_resolved_workload_matches(self):
        spec = ExperimentSpec(kind="baseline", workload="mlp", scale="tiny")
        workload = spec.resolved_workload()
        assert workload.name == "mlp-blobs"
        assert workload.scale == TINY

    def test_with_updates_routes_engine_fields(self):
        spec = ExperimentSpec(kind="table1")
        updated = spec.with_updates(workers=2, tolerance=0.1)
        assert updated.engine.workers == 2
        assert updated.tolerance == 0.1
        with pytest.raises(ExperimentError) as excinfo:
            spec.with_updates(nonsense=1)
        assert "nonsense" in str(excinfo.value)


class TestBuildPlan:
    def test_sweep_plan(self):
        spec = ExperimentSpec(
            kind="sweep", method="group_deletion", grid=(0.01, 0.08), name="plan-test"
        )
        plan = build_plan(spec)
        assert [point.value for point in plan.points] == [0.01, 0.08]
        assert [point.label for point in plan.points] == ["lambda=0.01", "lambda=0.08"]
        assert plan.execution == "serial"
        assert len({point.fingerprint for point in plan.points}) == 2
        assert build_plan(spec.with_updates(workers=2)).execution == "parallel"
        assert build_plan(spec.with_updates(mode="lockstep")).execution == "lockstep"
        assert "plan-test" in plan.describe()

    def test_single_kind_plan(self):
        plan = build_plan(ExperimentSpec(kind="table1"))
        assert len(plan.points) == 1
        assert plan.points[0].value is None
        assert plan.execution == "serial"

    def test_epsilon_sweep_keeps_points_path(self):
        spec = ExperimentSpec(kind="sweep", method="rank_clipping", grid=(0.1,), engine=SweepEngine(mode="lockstep"))
        assert build_plan(spec).execution == "serial"
