"""Tests for the experiment harness (presets, workloads, tables, figures, sweeps)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import (
    PAPER_HEADLINE,
    SMALL,
    TINY,
    ExperimentScale,
    TrainingSetup,
    convnet_workload,
    crossbar_area_percent,
    get_scale,
    get_workload,
    lenet_workload,
    mean_wire_percent,
    mlp_workload,
    paper_headline_numbers,
    routing_area_percent_from_wires,
    run_figure3,
    run_figure5,
    run_table1,
    run_table3,
    sparsity_maps,
    sweep_group_deletion,
    sweep_rank_clipping,
    train_baseline,
)
from repro.models.convnet import PAPER_CONVNET_RANKS, PAPER_CONVNET_SHAPES
from repro.models.lenet import PAPER_LENET_RANKS, PAPER_LENET_SHAPES


class TestPresetsAndWorkloads:
    def test_get_scale(self):
        assert get_scale("tiny") is TINY
        assert get_scale(SMALL) is SMALL
        with pytest.raises(ConfigurationError):
            get_scale("huge")

    def test_scale_overrides(self):
        scale = TINY.with_overrides(train_samples=10)
        assert scale.train_samples == 10
        assert scale.name == TINY.name

    def test_scale_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentScale(
                name="bad", train_samples=0, test_samples=1, image_size=8,
                network_scale=0.5, baseline_iterations=1, clip_iterations=1,
                clip_interval=1, deletion_iterations=1, finetune_iterations=1,
                batch_size=1, learning_rate=0.1, momentum=0.5, record_interval=1,
                eval_interval=1,
            )

    def test_workload_registry(self):
        assert get_workload("lenet", "tiny").name == "lenet-mnist"
        assert get_workload("convnet", "tiny").name == "convnet-cifar10"
        with pytest.raises(KeyError):
            get_workload("resnet")

    def test_workload_shapes_and_data(self):
        workload = lenet_workload("tiny")
        train, test = workload.data()
        assert train.inputs.shape[1:] == (1, TINY.image_size, TINY.image_size)
        assert set(workload.layer_shapes) == {"conv1", "conv2", "fc1", "fc2"}
        assert workload.clippable_layers == ("conv1", "conv2", "fc1")
        network = workload.build(0)
        assert network.forward(train.inputs[:2]).shape == (2, 10)

    def test_paper_scale_uses_paper_topology(self):
        workload = lenet_workload("paper")
        assert workload.layer_shapes == PAPER_LENET_SHAPES
        workload = convnet_workload("paper")
        assert workload.layer_shapes == PAPER_CONVNET_SHAPES

    def test_training_setup_baseline(self):
        workload = mlp_workload("tiny")
        network, accuracy, setup = train_baseline(workload)
        assert isinstance(setup, TrainingSetup)
        assert accuracy > 0.8  # blobs are easy
        assert setup.evaluate(network) == pytest.approx(accuracy)


class TestHeadlineNumbers:
    def test_crossbar_area_matches_paper(self):
        assert crossbar_area_percent(PAPER_LENET_SHAPES, PAPER_LENET_RANKS) == pytest.approx(
            PAPER_HEADLINE["lenet_crossbar_area_percent"], abs=0.01
        )
        assert crossbar_area_percent(PAPER_CONVNET_SHAPES, PAPER_CONVNET_RANKS) == pytest.approx(
            PAPER_HEADLINE["convnet_crossbar_area_percent"], abs=0.01
        )

    def test_routing_area_matches_paper(self):
        numbers = paper_headline_numbers()
        assert numbers.lenet_routing_area_percent == pytest.approx(
            PAPER_HEADLINE["lenet_routing_area_percent"], abs=0.1
        )
        assert numbers.convnet_routing_area_percent == pytest.approx(
            PAPER_HEADLINE["convnet_routing_area_percent"], abs=0.1
        )
        assert numbers.convnet_mean_wire_percent == pytest.approx(
            PAPER_HEADLINE["convnet_mean_wire_percent"], abs=0.1
        )
        table = numbers.format_table()
        assert "LeNet crossbar area" in table

    def test_helper_validation(self):
        with pytest.raises(ValueError):
            routing_area_percent_from_wires({})
        with pytest.raises(ValueError):
            mean_wire_percent({})


class TestTableAndFigureHarnesses:
    """End-to-end harness runs on the tiny MLP workload (fast)."""

    @pytest.fixture(scope="class")
    def baseline(self):
        workload = mlp_workload("tiny")
        network, accuracy, setup = train_baseline(workload)
        return workload, network, accuracy, setup

    def test_table1(self, baseline):
        workload, network, accuracy, setup = baseline
        result = run_table1(
            workload, setup=setup, baseline_network=network, baseline_accuracy=accuracy
        )
        methods = [row.method for row in result.rows]
        assert methods == ["Original", "Direct LRA", "Rank clipping"]
        clipped = result.row("Rank clipping")
        original = result.row("Original")
        # Rank clipping must actually reduce at least one rank.
        full = {name: min(workload.layer_shapes[name]) for name in workload.clippable_layers}
        assert any(clipped.ranks[n] < full[n] for n in clipped.ranks)
        # Accuracy is retained within a small margin on this easy dataset.
        assert clipped.accuracy >= original.accuracy - 0.1
        assert "Table 1" in result.format_table()
        assert set(result.as_dict()) == set(methods)
        with pytest.raises(KeyError):
            result.row("nope")

    def test_table3_and_figure5(self, baseline):
        workload, network, accuracy, setup = baseline
        result = run_table3(
            workload,
            strength=0.05,
            include_small_matrices=True,
            setup=setup,
            baseline_network=network,
            baseline_accuracy=accuracy,
        )
        assert result.rows
        for row in result.rows:
            assert 0.0 <= row.wire_fraction <= 1.0
            assert row.num_crossbars >= 1
            assert row.wire_percent == pytest.approx(100 * row.wire_fraction)
        assert 0.0 <= result.mean_routing_area_fraction() <= result.mean_wire_fraction() <= 1.0
        assert "MBC size" in result.format_table()

        figure5 = run_figure5(
            workload,
            strength=0.05,
            include_small_matrices=True,
            setup=setup,
            baseline_network=network,
        )
        assert figure5.iterations
        fractions = figure5.final_deleted_fractions()
        assert all(0.0 <= f <= 1.0 for f in fractions.values())
        assert "Figure 5" in figure5.format_series()

    def test_figure3(self, baseline):
        workload, network, accuracy, setup = baseline
        series = run_figure3(
            workload, setup=setup, baseline_network=network, baseline_accuracy=accuracy
        )
        assert series.iterations[0] == 0
        for name, ratios in series.rank_ratio.items():
            assert ratios[0] == pytest.approx(1.0)
            assert all(b <= a + 1e-12 for a, b in zip(ratios, ratios[1:]))
        assert "Figure 3" in series.format_series()

    def test_sparsity_maps(self, baseline):
        workload, network, accuracy, setup = baseline
        from repro.core import convert_to_lowrank

        lowrank = convert_to_lowrank(network)
        maps = sparsity_maps(lowrank, include_small_matrices=True)
        assert maps
        for sparsity in maps:
            assert 0.0 <= sparsity.nonzero_fraction <= 1.0
            assert sparsity.crossbar_density.shape == (
                sparsity.mask.shape[0] // sparsity.tile_shape[0]
                + (1 if sparsity.mask.shape[0] % sparsity.tile_shape[0] else 0),
                sparsity.mask.shape[1] // sparsity.tile_shape[1]
                + (1 if sparsity.mask.shape[1] % sparsity.tile_shape[1] else 0),
            )
            assert isinstance(sparsity.ascii_sketch(), str)

    def test_sweeps(self, baseline):
        workload, network, accuracy, setup = baseline
        tolerance_sweep = sweep_rank_clipping(
            workload,
            [0.02, 0.3],
            setup=setup,
            baseline_network=network,
            baseline_accuracy=accuracy,
        )
        assert tolerance_sweep.tolerances() == [0.02, 0.3]
        # Larger tolerance -> smaller (or equal) ranks and area.
        first, second = tolerance_sweep.points
        assert all(second.ranks[n] <= first.ranks[n] for n in first.ranks)
        assert second.total_area_fraction <= first.total_area_fraction + 1e-9
        assert len(tolerance_sweep.area_series()) == 2
        assert len(tolerance_sweep.ranks_series(list(first.ranks)[0])) == 2
        assert "Tolerance sweep" in tolerance_sweep.format_table()

        strength_sweep = sweep_group_deletion(
            workload,
            [0.005, 0.08],
            include_small_matrices=True,
            setup=setup,
            baseline_network=network,
        )
        weak, strong = strength_sweep.points
        assert strength_sweep.strengths() == [0.005, 0.08]
        # Stronger lambda deletes at least as many wires on average.
        assert np.mean(list(strong.wire_fractions.values())) <= np.mean(
            list(weak.wire_fractions.values())
        ) + 1e-9
        for matrix in strength_sweep.matrices():
            assert len(strength_sweep.wire_series(matrix)) == 2
            assert len(strength_sweep.routing_area_series(matrix)) == 2
        assert "Strength sweep" in strength_sweep.format_table()

    def test_sweep_validation(self, baseline):
        workload, network, accuracy, setup = baseline
        with pytest.raises(ValueError):
            sweep_rank_clipping(workload, [], setup=setup, baseline_network=network)
        with pytest.raises(ValueError):
            sweep_group_deletion(workload, [], setup=setup, baseline_network=network)
