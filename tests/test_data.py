"""Tests for the data substrate: datasets, loaders, synthetic generators, transforms."""

import numpy as np
import pytest

from repro.data import (
    ArrayDataset,
    DataLoader,
    SyntheticImageConfig,
    flatten_images,
    make_cifar10_like,
    make_gaussian_blobs,
    make_mnist_like,
    make_synthetic_image_dataset,
    normalize,
    normalize_dataset,
    per_channel_normalize,
    stratified_split,
    train_test_statistics,
    train_val_split,
)
from repro.exceptions import ShapeError


class TestArrayDataset:
    def test_basic_properties(self):
        ds = ArrayDataset(np.zeros((10, 3, 4, 4)), np.arange(10) % 2)
        assert len(ds) == 10
        assert ds.sample_shape == (3, 4, 4)
        assert ds.num_classes == 2
        x, y = ds[3]
        assert x.shape == (3, 4, 4) and y == 1

    def test_length_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            ArrayDataset(np.zeros((5, 2)), np.zeros(4))

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            ArrayDataset(np.zeros((0, 2)), np.zeros(0))

    def test_subset(self):
        ds = ArrayDataset(np.arange(20).reshape(10, 2), np.arange(10))
        sub = ds.subset([1, 3, 5])
        assert len(sub) == 3
        assert np.array_equal(sub.targets, [1, 3, 5])

    def test_class_counts(self):
        ds = ArrayDataset(np.zeros((6, 1)), np.array([0, 0, 1, 2, 2, 2]))
        assert np.array_equal(ds.class_counts(), [2, 1, 3])

    def test_arrays_view(self):
        inputs = np.zeros((4, 2))
        targets = np.arange(4)
        ds = ArrayDataset(inputs, targets)
        x, y = ds.arrays()
        assert x is inputs and y is targets


class TestDataLoader:
    def test_batch_shapes_and_count(self):
        ds = ArrayDataset(np.arange(50).reshape(25, 2), np.arange(25) % 5)
        loader = DataLoader(ds, batch_size=8, shuffle=False)
        batches = list(loader)
        assert len(loader) == 4
        assert len(batches) == 4
        assert batches[0][0].shape == (8, 2)
        assert batches[-1][0].shape == (1, 2)

    def test_drop_last(self):
        ds = ArrayDataset(np.zeros((25, 2)), np.zeros(25))
        loader = DataLoader(ds, batch_size=8, drop_last=True, shuffle=False)
        assert len(loader) == 3
        assert sum(b[0].shape[0] for b in loader) == 24

    def test_covers_all_samples_when_shuffled(self):
        ds = ArrayDataset(np.arange(30).reshape(30, 1), np.arange(30))
        loader = DataLoader(ds, batch_size=7, shuffle=True, rng=0)
        seen = np.concatenate([y for _, y in loader])
        assert sorted(seen.tolist()) == list(range(30))

    def test_shuffle_determinism(self):
        ds = ArrayDataset(np.arange(30).reshape(30, 1), np.arange(30))
        a = np.concatenate([y for _, y in DataLoader(ds, batch_size=5, rng=42)])
        b = np.concatenate([y for _, y in DataLoader(ds, batch_size=5, rng=42)])
        assert np.array_equal(a, b)

    def test_shuffle_changes_across_epochs(self):
        ds = ArrayDataset(np.arange(30).reshape(30, 1), np.arange(30))
        loader = DataLoader(ds, batch_size=30, rng=1)
        first = next(iter(loader))[1]
        second = next(iter(loader))[1]
        assert not np.array_equal(first, second)

    def test_generic_dataset_support(self):
        class Tiny:
            def __len__(self):
                return 4

            def __getitem__(self, index):
                return np.full(3, index, dtype=float), index

        loader = DataLoader(Tiny(), batch_size=2, shuffle=False)
        x, y = next(iter(loader))
        assert x.shape == (2, 3)
        assert np.array_equal(y, [0, 1])


class TestSyntheticImages:
    def test_mnist_like_geometry(self):
        train, test = make_mnist_like(train_samples=50, test_samples=20, seed=0)
        assert train.inputs.shape == (50, 1, 28, 28)
        assert test.inputs.shape == (20, 1, 28, 28)
        assert train.num_classes == 10

    def test_cifar_like_geometry(self):
        train, test = make_cifar10_like(train_samples=30, test_samples=10, image_size=16)
        assert train.inputs.shape == (30, 3, 16, 16)

    def test_determinism(self):
        a, _ = make_mnist_like(train_samples=20, test_samples=10, seed=5)
        b, _ = make_mnist_like(train_samples=20, test_samples=10, seed=5)
        assert np.array_equal(a.inputs, b.inputs)
        assert np.array_equal(a.targets, b.targets)

    def test_different_seeds_differ(self):
        a, _ = make_mnist_like(train_samples=20, test_samples=10, seed=1)
        b, _ = make_mnist_like(train_samples=20, test_samples=10, seed=2)
        assert not np.array_equal(a.inputs, b.inputs)

    def test_labels_balanced(self):
        train, _ = make_mnist_like(train_samples=100, test_samples=10, seed=0)
        counts = train.class_counts()
        assert counts.min() >= 9 and counts.max() <= 11

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SyntheticImageConfig(max_shift=30, image_size=28).validate()
        with pytest.raises(ValueError):
            SyntheticImageConfig(num_classes=0).validate()

    def test_classes_are_separable_by_nearest_prototype(self):
        # A nearest-class-mean classifier on the noiseless prototypes should
        # label the noisy samples well above chance, otherwise no network
        # could learn the task.
        config = SyntheticImageConfig(
            train_samples=200, test_samples=50, noise_std=0.3, seed=3
        )
        train, test = make_synthetic_image_dataset(config)
        means = np.stack(
            [train.inputs[train.targets == c].mean(axis=0).ravel() for c in range(10)]
        )
        correct = 0
        for x, y in zip(test.inputs, test.targets):
            distances = np.linalg.norm(means - x.ravel(), axis=1)
            correct += int(np.argmin(distances) == y)
        assert correct / len(test) > 0.5

    def test_gaussian_blobs(self):
        train, test = make_gaussian_blobs(num_classes=3, num_features=5, samples_per_class=20)
        assert train.inputs.shape[1] == 5
        assert set(np.unique(train.targets)) == {0, 1, 2}
        assert len(train) + len(test) == 60


class TestTransformsAndSplits:
    def test_normalize(self):
        data = np.random.default_rng(0).normal(5.0, 3.0, size=(100, 4))
        normalized = normalize(data)
        assert normalized.mean() == pytest.approx(0.0, abs=1e-9)
        assert normalized.std() == pytest.approx(1.0, abs=1e-9)
        with pytest.raises(ValueError):
            normalize(data, mean=0.0, std=0.0)

    def test_per_channel_normalize(self):
        images = np.random.default_rng(0).normal(size=(10, 3, 4, 4)) * np.array(
            [1.0, 5.0, 10.0]
        ).reshape(1, 3, 1, 1)
        out = per_channel_normalize(images)
        for c in range(3):
            assert out[:, c].std() == pytest.approx(1.0, abs=1e-9)
        with pytest.raises(ShapeError):
            per_channel_normalize(np.zeros((3, 4, 4)))

    def test_flatten_images(self):
        assert flatten_images(np.zeros((5, 2, 3, 3))).shape == (5, 18)

    def test_normalize_dataset(self):
        ds = ArrayDataset(np.random.default_rng(0).normal(3, 2, size=(50, 4)), np.zeros(50))
        out = normalize_dataset(ds)
        assert out.inputs.mean() == pytest.approx(0.0, abs=1e-9)

    def test_train_test_statistics_uses_train_stats(self):
        train = ArrayDataset(np.full((10, 2), 4.0), np.zeros(10))
        test = ArrayDataset(np.full((5, 2), 6.0), np.zeros(5))
        train = ArrayDataset(train.inputs + np.arange(10).reshape(-1, 1), train.targets)
        norm_train, norm_test = train_test_statistics(train, test)
        assert norm_train.inputs.mean() == pytest.approx(0.0, abs=1e-9)
        assert norm_test.inputs.mean() != pytest.approx(0.0, abs=1e-3)

    def test_train_val_split_sizes(self):
        ds = ArrayDataset(np.arange(40).reshape(20, 2), np.arange(20) % 4)
        train, val = train_val_split(ds, 0.25, rng=0)
        assert len(train) == 15 and len(val) == 5
        all_targets = sorted(np.concatenate([train.targets, val.targets]).tolist())
        assert all_targets == sorted(ds.targets.tolist())

    def test_stratified_split_balances_classes(self):
        targets = np.repeat(np.arange(4), 20)
        ds = ArrayDataset(np.zeros((80, 2)), targets)
        train, val = stratified_split(ds, 0.25, rng=0)
        val_counts = np.bincount(val.targets.astype(int))
        assert np.all(val_counts == 5)

    def test_split_fraction_validation(self):
        ds = ArrayDataset(np.zeros((10, 2)), np.zeros(10))
        with pytest.raises(ValueError):
            train_val_split(ds, 0.0)
        with pytest.raises(ValueError):
            train_val_split(ds, 1.0)
