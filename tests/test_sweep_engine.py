"""Tests for the sweep execution engine and its supporting machinery.

Covers: serial↔parallel bit-identity of sweep points (``workers=1`` vs
``workers=2``), deterministic per-point seeding, batched multi-network
evaluation parity, routing-analysis memoization (hit counts during
group-deletion record steps), the vectorized crossbar group Lasso, and the
stub-row rendering of the sweep tables.
"""

import numpy as np
import pytest

from repro.core import (
    CrossbarGroupLasso,
    GroupDeletionConfig,
    GroupConnectionDeleter,
    convert_to_lowrank,
    derive_network_groups,
    flatten_groups,
    matrix_group_norms,
)
from repro.exceptions import ConfigurationError, LayerError
from repro.experiments import (
    StrengthPoint,
    StrengthSweepResult,
    SweepEngine,
    TolerancePoint,
    ToleranceSweepResult,
    mlp_workload,
    sweep_group_deletion,
    sweep_rank_clipping,
    train_baseline,
)
from repro.hardware.routing import RoutingAnalysisCache, analyze_routing, mask_fingerprint
from repro.models import build_mlp
from repro.nn import GroupLassoRegularizer, batched_evaluate, stacked_predict
from repro.utils.rng import derive_point_seed


@pytest.fixture(scope="module")
def trained_baseline():
    workload = mlp_workload("tiny")
    network, accuracy, setup = train_baseline(workload)
    return workload, network, accuracy, setup


TOLERANCES = [0.02, 0.3]
STRENGTHS = [0.01, 0.08]


class TestSerialParallelParity:
    def test_rank_clipping_points_bit_identical(self, trained_baseline):
        workload, network, accuracy, setup = trained_baseline
        kwargs = dict(setup=setup, baseline_network=network, baseline_accuracy=accuracy)
        serial = sweep_rank_clipping(
            workload, TOLERANCES, engine=SweepEngine(workers=1), **kwargs
        )
        parallel = sweep_rank_clipping(
            workload, TOLERANCES, engine=SweepEngine(workers=2), **kwargs
        )
        assert serial.baseline_accuracy == parallel.baseline_accuracy
        assert serial.points == parallel.points  # frozen dataclass equality: bitwise

    def test_group_deletion_points_bit_identical(self, trained_baseline):
        workload, network, accuracy, setup = trained_baseline
        kwargs = dict(
            setup=setup, baseline_network=network, include_small_matrices=True
        )
        serial = sweep_group_deletion(
            workload, STRENGTHS, engine=SweepEngine(workers=1), **kwargs
        )
        parallel = sweep_group_deletion(
            workload, STRENGTHS, engine=SweepEngine(workers=2), **kwargs
        )
        assert serial.baseline_accuracy == parallel.baseline_accuracy
        assert serial.points == parallel.points

    def test_per_point_seed_is_order_insensitive(self, trained_baseline):
        workload, network, accuracy, setup = trained_baseline
        kwargs = dict(setup=setup, baseline_network=network, baseline_accuracy=accuracy)
        serial = sweep_rank_clipping(
            workload,
            TOLERANCES,
            engine=SweepEngine(workers=1, per_point_seed=True),
            **kwargs,
        )
        parallel = sweep_rank_clipping(
            workload,
            TOLERANCES,
            engine=SweepEngine(workers=2, per_point_seed=True),
            **kwargs,
        )
        assert serial.points == parallel.points

    def test_engine_matches_reference_semantics(self, trained_baseline):
        """The optimized engine reports the same sweep as the reference path."""
        workload, network, accuracy, setup = trained_baseline
        kwargs = dict(
            setup=setup, baseline_network=network, include_small_matrices=True
        )
        fast = sweep_group_deletion(
            workload, STRENGTHS, engine=SweepEngine(), **kwargs
        )
        reference = sweep_group_deletion(
            workload, STRENGTHS, engine=SweepEngine.reference(), **kwargs
        )
        for a, b in zip(fast.points, reference.points):
            assert a.strength == b.strength
            # Training trajectories agree up to the penalty's floating-point
            # summation order; wire counts are integers and must match.
            assert a.wire_fractions == b.wire_fractions
            assert a.accuracy == pytest.approx(b.accuracy, abs=0.05)

    def test_engine_validation(self):
        with pytest.raises(ConfigurationError):
            SweepEngine(workers=0)
        with pytest.raises(ConfigurationError):
            SweepEngine(start_method="not-a-method")
        with pytest.raises(ConfigurationError):
            SweepEngine(mode="turbo")


class TestLockstepMode:
    def test_lockstep_sweep_bit_identical_to_points(self, trained_baseline):
        """mode="lockstep" must reproduce the per-point engine path bitwise."""
        workload, network, accuracy, setup = trained_baseline
        kwargs = dict(setup=setup, baseline_network=network, include_small_matrices=True)
        points = sweep_group_deletion(
            workload, STRENGTHS, engine=SweepEngine(), **kwargs
        )
        lockstep = sweep_group_deletion(
            workload, STRENGTHS, engine=SweepEngine(mode="lockstep"), **kwargs
        )
        assert points.baseline_accuracy == lockstep.baseline_accuracy
        assert points.points == lockstep.points  # frozen dataclass equality: bitwise
        assert lockstep.routing_cache_stats["hits"] > 0

    def test_lockstep_with_per_point_seed(self, trained_baseline):
        """Per-point data streams keep lockstep bit-identical to points mode."""
        workload, network, accuracy, setup = trained_baseline
        kwargs = dict(setup=setup, baseline_network=network, include_small_matrices=True)
        points = sweep_group_deletion(
            workload, STRENGTHS, engine=SweepEngine(per_point_seed=True), **kwargs
        )
        lockstep = sweep_group_deletion(
            workload,
            STRENGTHS,
            engine=SweepEngine(per_point_seed=True, mode="lockstep"),
            **kwargs,
        )
        assert points.points == lockstep.points

    def test_single_point_falls_back_to_serial(self, trained_baseline):
        workload, network, accuracy, setup = trained_baseline
        kwargs = dict(setup=setup, baseline_network=network, include_small_matrices=True)
        points = sweep_group_deletion(
            workload, [0.05], engine=SweepEngine(), **kwargs
        )
        lockstep = sweep_group_deletion(
            workload, [0.05], engine=SweepEngine(mode="lockstep"), **kwargs
        )
        assert points.points == lockstep.points

    def test_tolerance_sweep_ignores_lockstep_mode(self, trained_baseline):
        """ε points diverge structurally at the first clip; the points path runs."""
        workload, network, accuracy, setup = trained_baseline
        kwargs = dict(setup=setup, baseline_network=network, baseline_accuracy=accuracy)
        points = sweep_rank_clipping(
            workload, TOLERANCES, engine=SweepEngine(), **kwargs
        )
        lockstep = sweep_rank_clipping(
            workload, TOLERANCES, engine=SweepEngine(mode="lockstep"), **kwargs
        )
        assert points.points == lockstep.points


class TestRoutingCacheThreading:
    def test_serial_points_start_warm(self, trained_baseline):
        """Later serial points must reuse entries earlier points discovered."""
        from repro.experiments.runner import StrengthPointTask, run_strength_point
        from repro.core import GroupDeletionConfig, convert_to_lowrank
        import copy

        workload, network, accuracy, setup = trained_baseline
        engine = SweepEngine()
        scale = workload.scale
        lowrank = convert_to_lowrank(workload.build(7))

        def make_tasks():
            return [
                StrengthPointTask(
                    index=index,
                    strength=strength,
                    network=copy.deepcopy(lowrank),
                    setup=engine.point_setup(setup, index),
                    config=GroupDeletionConfig(
                        strength=strength,
                        iterations=scale.deletion_iterations,
                        finetune_iterations=scale.finetune_iterations,
                        include_small_matrices=True,
                    ),
                    record_interval=scale.record_interval,
                )
                for index, strength in enumerate(STRENGTHS)
            ]

        cold = [run_strength_point(task) for task in make_tasks()]
        warm = engine.run_strength_points(make_tasks())
        # Identical results either way (memoized analyses are value objects)...
        for a, b in zip(cold, warm):
            assert a.wire_fractions == b.wire_fractions
            assert a.routing_area_fractions == b.routing_area_fractions
        # ...but the threaded path converts later points' initial misses into
        # hits: the dense pre-deletion mask is shared across all points.
        cold_hits = sum(o.routing_cache_stats["hits"] for o in cold)
        cold_misses = sum(o.routing_cache_stats["misses"] for o in cold)
        warm_hits = sum(o.routing_cache_stats["hits"] for o in warm)
        warm_misses = sum(o.routing_cache_stats["misses"] for o in warm)
        assert warm_hits > cold_hits
        assert warm_misses < cold_misses

    def test_outcomes_carry_cache_entries(self, trained_baseline):
        from repro.experiments.runner import StrengthPointTask, run_strength_point
        from repro.core import GroupDeletionConfig, convert_to_lowrank
        from repro.hardware.routing import RoutingAnalysisCache
        import copy

        workload, network, accuracy, setup = trained_baseline
        scale = workload.scale
        engine = SweepEngine()
        task = StrengthPointTask(
            index=0,
            strength=0.05,
            network=convert_to_lowrank(workload.build(8)),
            setup=engine.point_setup(setup, 0),
            config=GroupDeletionConfig(
                strength=0.05,
                iterations=scale.deletion_iterations,
                finetune_iterations=scale.finetune_iterations,
                include_small_matrices=True,
            ),
            record_interval=scale.record_interval,
        )
        outcome = run_strength_point(task)
        assert outcome.routing_cache_entries
        merged = RoutingAnalysisCache()
        assert merged.merge_entries(outcome.routing_cache_entries) == len(
            outcome.routing_cache_entries
        )
        # Re-merging adds nothing; counters are untouched by merging.
        assert merged.merge_entries(outcome.routing_cache_entries) == 0
        assert merged.stats()["hits"] == 0 and merged.stats()["misses"] == 0

    def test_merge_respects_maxsize(self):
        from repro.hardware.routing import RoutingAnalysisCache

        entries = [((("p",), bytes([i])), i) for i in range(8)]
        small = RoutingAnalysisCache(maxsize=3)
        small.merge_entries(entries)
        assert len(small) <= 3


class TestDerivePointSeed:
    def test_deterministic_and_distinct(self):
        seeds = [derive_point_seed(0, index) for index in range(8)]
        assert seeds == [derive_point_seed(0, index) for index in range(8)]
        assert len(set(seeds)) == len(seeds)
        assert derive_point_seed(1, 0) != derive_point_seed(0, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            derive_point_seed(0, -1)


class TestBatchedEvaluation:
    def test_matches_per_network_predict(self, trained_baseline):
        workload, network, accuracy, setup = trained_baseline
        networks = [
            convert_to_lowrank(workload.build(seed)) for seed in range(4)
        ]
        inputs, targets = setup.test_dataset.arrays()
        stacked = stacked_predict(networks, inputs, batch_size=64)
        for slot, net in enumerate(networks):
            np.testing.assert_array_equal(
                stacked[slot], net.predict(inputs, batch_size=64)
            )
        accuracies = batched_evaluate(networks, inputs, targets)
        assert accuracies == [setup.evaluate(net) for net in networks]

    def test_groups_mixed_architectures(self, trained_baseline):
        workload, network, accuracy, setup = trained_baseline
        inputs, targets = setup.test_dataset.arrays()
        same = [convert_to_lowrank(workload.build(seed)) for seed in range(2)]
        odd = build_mlp(inputs.shape[1], [10], 10, rng=0)  # different architecture
        accuracies = batched_evaluate(same + [odd], inputs, targets)
        assert len(accuracies) == 3
        assert accuracies[2] == setup.evaluate(odd)
        with pytest.raises(LayerError):
            stacked_predict(same + [odd], inputs)

    def test_empty_and_validation(self):
        assert batched_evaluate([], np.zeros((1, 2)), np.zeros(1, dtype=int)) == []
        with pytest.raises(LayerError):
            stacked_predict([], np.zeros((1, 2)))

    def test_signature_separates_differing_layer_config(self, rng):
        """Same shapes but different activation config must not be stacked."""
        from repro.nn import LeakyReLU, Linear, Sequential
        from repro.nn.batched import architecture_signature

        def network(slope):
            return Sequential(
                [
                    Linear(6, 5, name="fc1", rng=1),
                    LeakyReLU(negative_slope=slope, name="act"),
                    Linear(5, 3, name="fc2", rng=2),
                ]
            )

        gentle, steep = network(0.01), network(0.9)
        assert architecture_signature(gentle) != architecture_signature(steep)
        inputs = rng.standard_normal((32, 6))
        targets = rng.integers(0, 3, 32)
        accuracies = batched_evaluate([gentle, steep], inputs, targets)
        from repro.nn.metrics import accuracy as accuracy_of

        assert accuracies == [
            float(accuracy_of(net.predict(inputs), targets)) for net in (gentle, steep)
        ]


class TestRoutingMemoization:
    def test_cache_reports_match_direct_analysis(self, trained_baseline):
        workload, network, accuracy, setup = trained_baseline
        lowrank = convert_to_lowrank(workload.build(0))
        grouped = derive_network_groups(lowrank, include_small_matrices=True)
        cache = RoutingAnalysisCache()
        for matrix in grouped:
            direct = analyze_routing(matrix.values(), matrix.plan, name=matrix.name)
            assert cache.analyze(matrix.values(), matrix.plan, name=matrix.name) == direct
            assert cache.analyze(matrix.values(), matrix.plan, name=matrix.name) == direct
        assert cache.hits == len(grouped)
        assert cache.misses == len(grouped)

    def test_record_steps_hit_the_cache(self, trained_baseline):
        """Record steps re-analyze near-identical masks — they must memoize."""
        workload, network, accuracy, setup = trained_baseline
        lowrank = convert_to_lowrank(workload.build(1))
        deleter = GroupConnectionDeleter(
            GroupDeletionConfig(
                strength=0.05, iterations=60, finetune_iterations=40,
                include_small_matrices=True,
            ),
            record_interval=10,
        )
        deleter.run(lowrank, setup.trainer_factory)
        stats = deleter.routing_cache.stats()
        # Every record step analyzes every matrix; only mask changes miss.
        assert stats["hits"] > stats["misses"]
        assert stats["hits"] > 0

    def test_memoization_can_be_disabled(self, trained_baseline):
        workload, network, accuracy, setup = trained_baseline
        deleter = GroupConnectionDeleter(GroupDeletionConfig(), memoize_routing=False)
        assert deleter.routing_cache is None

    def test_sweep_aggregates_cache_stats_and_wire_trace(self, trained_baseline):
        workload, network, accuracy, setup = trained_baseline
        sweep = sweep_group_deletion(
            workload,
            STRENGTHS,
            setup=setup,
            baseline_network=network,
            include_small_matrices=True,
        )
        assert sweep.routing_cache_stats["hits"] > 0
        reference = sweep_group_deletion(
            workload,
            STRENGTHS,
            setup=setup,
            baseline_network=network,
            include_small_matrices=True,
            engine=SweepEngine.reference(),
        )
        assert reference.routing_cache_stats == {}

    def test_figure5_exposes_remaining_wire_trace(self, trained_baseline):
        from repro.experiments import run_figure5

        workload, network, accuracy, setup = trained_baseline
        series = run_figure5(
            workload,
            strength=0.05,
            include_small_matrices=True,
            setup=setup,
            baseline_network=network,
        )
        assert series.remaining_wire_fraction
        for fractions in series.remaining_wire_fraction.values():
            assert len(fractions) == len(series.iterations)
            assert all(0.0 <= value <= 1.0 for value in fractions)

    def test_fingerprint_distinguishes_masks(self):
        mask = np.ones((8, 8), dtype=bool)
        other = mask.copy()
        other[3, 4] = False
        assert mask_fingerprint(mask) != mask_fingerprint(other)
        assert mask_fingerprint(mask) == mask_fingerprint(np.ones((8, 8), dtype=bool))
        # Shape-sensitivity: same bits, different geometry.
        assert mask_fingerprint(mask) != mask_fingerprint(np.ones((4, 16), dtype=bool))

    def test_cache_eviction(self):
        cache = RoutingAnalysisCache(maxsize=2)
        from repro.hardware.tiling import TilingPlan

        plan = TilingPlan(matrix_rows=4, matrix_cols=4, tile_rows=4, tile_cols=4)
        rng = np.random.default_rng(0)
        for _ in range(5):
            cache.analyze(rng.standard_normal((4, 4)), plan)
        assert len(cache) <= 2
        with pytest.raises(ValueError):
            RoutingAnalysisCache(maxsize=0)


def _apply_deletion_loop_reference(grouped_matrices, *, zero_threshold, relative_threshold=0.0):
    """The seed per-group deletion loop, kept verbatim as the parity oracle."""
    from repro.core.group_deletion import effective_threshold

    deleted_counts = {}
    masks = {}
    parameters = {}
    for matrix in grouped_matrices:
        key = id(matrix.parameter)
        if key not in masks:
            existing = matrix.parameter.mask
            masks[key] = (
                np.ones(matrix.parameter.data.shape, dtype=bool)
                if existing is None
                else existing.copy()
            )
            parameters[key] = matrix.parameter
        threshold = effective_threshold(
            matrix, zero_threshold=zero_threshold, relative_threshold=relative_threshold
        )
        deleted = 0
        for group in matrix.groups:
            if group.norm() <= threshold:
                group.zero_out()
                masks[key][group.index] = False
                deleted += 1
        deleted_counts[matrix.name] = deleted
    for key, mask in masks.items():
        parameters[key].set_mask(mask)
    return deleted_counts


class TestApplyDeletionCascadeParity:
    """Vectorized apply_deletion must replicate the loop's zero-as-you-go order."""

    def _grouped(self, values):
        from repro.core.groups import derive_matrix_groups
        from repro.nn.parameter import Parameter

        return [
            derive_matrix_groups(
                Parameter(np.array(values, dtype=float)),
                name="m",
                layer_name="layer",
                transpose=False,
            )
        ]

    def test_row_deletion_cascades_borderline_column(self):
        """A row deleted first can push a column below the threshold."""
        from repro.core.group_deletion import apply_deletion

        values = np.full((4, 4), 1.0)
        values[0, :] = 0.05               # row 0 norm 0.1 <= 0.5 -> deleted
        values[1:, 0] = np.sqrt(0.25 / 3) - 1e-6  # col 0: 0.5025 before, <0.5 after
        vec = self._grouped(values)
        loop = self._grouped(values)
        vec_counts = apply_deletion(vec, zero_threshold=0.5)
        loop_counts = _apply_deletion_loop_reference(loop, zero_threshold=0.5)
        assert vec_counts == loop_counts == {"m": 2}  # the cascade fired
        np.testing.assert_array_equal(
            vec[0].parameter.mask, loop[0].parameter.mask
        )
        np.testing.assert_array_equal(
            vec[0].parameter.data, loop[0].parameter.data
        )

    def test_randomized_multi_tile_parity(self):
        from repro.core.group_deletion import apply_deletion
        from repro.core.groups import derive_matrix_groups
        from repro.hardware.library import CrossbarLibrary
        from repro.hardware.technology import TechnologyParameters
        from repro.nn.parameter import Parameter

        library = CrossbarLibrary(
            technology=TechnologyParameters(max_crossbar_rows=4, max_crossbar_cols=4)
        )
        rng = np.random.default_rng(12)
        for trial in range(5):
            values = rng.standard_normal((8, 8)) * rng.uniform(0.1, 1.0, size=(8, 8))
            pair = [
                [
                    derive_matrix_groups(
                        Parameter(values.copy()),
                        name="m",
                        layer_name="layer",
                        transpose=bool(trial % 2),
                        library=library,
                    )
                ]
                for _ in range(2)
            ]
            threshold = float(np.quantile(np.abs(values), 0.3))
            vec_counts = apply_deletion(
                pair[0], zero_threshold=threshold, relative_threshold=0.1
            )
            loop_counts = _apply_deletion_loop_reference(
                pair[1], zero_threshold=threshold, relative_threshold=0.1
            )
            assert vec_counts == loop_counts
            np.testing.assert_array_equal(
                pair[0][0].parameter.mask, pair[1][0].parameter.mask
            )
            np.testing.assert_array_equal(
                pair[0][0].parameter.data, pair[1][0].parameter.data
            )


class TestCrossbarGroupLasso:
    def test_matches_flat_group_lasso(self, trained_baseline):
        workload, network, accuracy, setup = trained_baseline
        lowrank = convert_to_lowrank(workload.build(2))
        grouped = derive_network_groups(lowrank, include_small_matrices=True)
        flat = GroupLassoRegularizer(flatten_groups(grouped), 0.03)
        vectorized = CrossbarGroupLasso(grouped, 0.03)
        assert vectorized.penalty() == pytest.approx(flat.penalty(), rel=1e-12)
        for param in lowrank.parameters():
            param.zero_grad()
        flat.apply_gradients()
        expected = [param.grad.copy() for param in lowrank.parameters()]
        for param in lowrank.parameters():
            param.zero_grad()
        vectorized.apply_gradients()
        for param, grad in zip(lowrank.parameters(), expected):
            np.testing.assert_allclose(param.grad, grad, atol=1e-14, rtol=0)

    def test_group_norms_match_per_group_loop(self, trained_baseline):
        workload, network, accuracy, setup = trained_baseline
        lowrank = convert_to_lowrank(workload.build(3))
        for matrix in derive_network_groups(lowrank, include_small_matrices=True):
            norms = matrix_group_norms(matrix.values(), matrix.plan)
            assert norms is not None
            row_norms, col_norms = norms
            flat = np.sort(np.concatenate([row_norms.ravel(), col_norms.ravel()]))
            loop = np.sort([group.norm() for group in matrix.groups])
            np.testing.assert_allclose(flat, loop, rtol=1e-12)

    def test_gradients_identical_with_and_without_penalty_first(self, trained_baseline):
        """The penalty->apply_gradients norm cache must not change results."""
        workload, network, accuracy, setup = trained_baseline
        lowrank = convert_to_lowrank(workload.build(5))
        grouped = derive_network_groups(lowrank, include_small_matrices=True)
        regularizer = CrossbarGroupLasso(grouped, 0.04)
        for param in lowrank.parameters():
            param.zero_grad()
        regularizer.apply_gradients()  # standalone call: no cache available
        standalone = [param.grad.copy() for param in lowrank.parameters()]
        for param in lowrank.parameters():
            param.zero_grad()
        regularizer.penalty()
        regularizer.apply_gradients()  # trainer order: consumes cached norms
        for param, grad in zip(lowrank.parameters(), standalone):
            np.testing.assert_array_equal(param.grad, grad)

    def test_zero_strength_is_inert(self, trained_baseline):
        workload, network, accuracy, setup = trained_baseline
        lowrank = convert_to_lowrank(workload.build(4))
        grouped = derive_network_groups(lowrank, include_small_matrices=True)
        regularizer = CrossbarGroupLasso(grouped, 0.0)
        assert regularizer.penalty() == 0.0
        before = [param.grad.copy() for param in lowrank.parameters()]
        regularizer.apply_gradients()
        for param, grad in zip(lowrank.parameters(), before):
            np.testing.assert_array_equal(param.grad, grad)


class TestFormatTableStubRows:
    def test_tolerance_table_renders_missing_layer(self):
        result = ToleranceSweepResult(workload_name="stub")
        result.points.append(
            TolerancePoint(
                tolerance=0.01, accuracy=0.9, error=0.1,
                ranks={"fc1": 4, "fc2": 3},
                layer_area_fractions={"fc1": 0.5, "fc2": 0.25},
                total_area_fraction=0.4,
            )
        )
        result.points.append(
            TolerancePoint(
                tolerance=0.05, accuracy=0.8, error=0.2,
                ranks={"fc1": 2},  # fc2 missing
                layer_area_fractions={"fc1": 0.3},
                total_area_fraction=0.3,
            )
        )
        table = result.format_table()
        assert "fc2" in table
        assert "-" in table.splitlines()[-1]

    def test_strength_table_renders_missing_matrix(self):
        result = StrengthSweepResult(workload_name="stub")
        result.points.append(
            StrengthPoint(
                strength=0.01, accuracy=0.9, error=0.1,
                wire_fractions={"fc1_u": 0.8, "fc1_v": 0.7},
                routing_area_fractions={"fc1_u": 0.64, "fc1_v": 0.49},
            )
        )
        result.points.append(
            StrengthPoint(
                strength=0.05, accuracy=0.8, error=0.2,
                wire_fractions={"fc1_u": 0.5},  # fc1_v missing
                routing_area_fractions={"fc1_u": 0.25},
            )
        )
        assert result.matrices() == ["fc1_u", "fc1_v"]
        table = result.format_table()
        assert "fc1_v" in table
        assert "-" in table.splitlines()[-1]

    def test_empty_results_render(self):
        assert "Tolerance sweep" in ToleranceSweepResult(workload_name="x").format_table()
        assert "Strength sweep" in StrengthSweepResult(workload_name="x").format_table()
