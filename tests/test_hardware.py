"""Tests for the crossbar hardware model: technology, crossbars, library, tiling,
routing and area estimation, including the paper's exact geometry."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError, TilingError
from repro.hardware import (
    PAPER_LIBRARY,
    PAPER_TECHNOLOGY,
    Crossbar,
    CrossbarInstance,
    CrossbarLibrary,
    RoutingReport,
    TechnologyParameters,
    TilingPlan,
    analyze_routing,
    area_reduction_rank_bound,
    count_remaining_wires,
    dense_layer_area,
    factorized_layer_area,
    largest_divisor_at_most,
    layer_area_fraction,
    matrix_crossbar_area,
    network_area_fraction,
    per_layer_area_fractions,
    plan_tiling,
    routing_area,
    routing_area_from_lengths,
)
from repro.models.convnet import PAPER_CONVNET_RANKS, PAPER_CONVNET_SHAPES
from repro.models.lenet import PAPER_LENET_RANKS, PAPER_LENET_SHAPES


class TestTechnology:
    def test_table2_defaults(self):
        tech = PAPER_TECHNOLOGY
        assert tech.cell_area_f2 == 4.0
        assert tech.max_crossbar_rows == 64
        assert tech.max_crossbar_cols == 64
        assert tech.cell_pitch_f == 2.0

    def test_derived_quantities(self):
        tech = TechnologyParameters(feature_size_nm=20.0)
        assert tech.cell_area_nm2 == pytest.approx(4 * 400)
        assert tech.wire_pitch_f == pytest.approx(2.0)
        assert tech.crossbar_cell_limit() == 64 * 64
        assert tech.fits_single_crossbar(64, 64)
        assert not tech.fits_single_crossbar(65, 10)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TechnologyParameters(cell_area_f2=0)
        with pytest.raises(ConfigurationError):
            TechnologyParameters(max_crossbar_rows=0)
        with pytest.raises(ConfigurationError):
            TechnologyParameters(routing_alpha=0)


class TestCrossbar:
    def test_area(self):
        xbar = Crossbar(64, 64)
        assert xbar.num_cells == 4096
        assert xbar.area_f2 == 4 * 4096
        assert xbar.num_io_wires == 128

    def test_size_limit_enforced(self):
        with pytest.raises(TilingError):
            Crossbar(65, 64)

    def test_instance_live_wires(self):
        weights = np.zeros((4, 3))
        weights[1, 2] = 0.5
        inst = CrossbarInstance(Crossbar(4, 3), (0, 0), weights)
        assert inst.live_rows() == 1
        assert inst.live_cols() == 1
        assert inst.live_wires() == 2
        assert not inst.is_empty()
        assert inst.density() == pytest.approx(1 / 12)

    def test_instance_empty(self):
        inst = CrossbarInstance(Crossbar(4, 3), (0, 0), np.zeros((4, 3)))
        assert inst.is_empty()
        assert inst.live_wires() == 0

    def test_instance_without_weights(self):
        inst = CrossbarInstance(Crossbar(4, 3), (0, 0))
        assert inst.live_wires() == 7
        assert not inst.is_empty()
        assert inst.density() == 1.0


class TestLibrary:
    def test_largest_divisor(self):
        assert largest_divisor_at_most(500, 64) == 50
        assert largest_divisor_at_most(800, 64) == 50
        assert largest_divisor_at_most(75, 64) == 25
        assert largest_divisor_at_most(1024, 64) == 64
        assert largest_divisor_at_most(30, 64) == 30
        assert largest_divisor_at_most(127, 64) == 1

    def test_single_crossbar_selection(self):
        assert PAPER_LIBRARY.select_tile_shape(50, 12) == (50, 12, False)
        assert PAPER_LIBRARY.select_tile_shape(64, 64) == (64, 64, False)

    def test_divisor_selection_matches_paper_table3(self):
        # LeNet fc1: U is 500x36 -> 50x36 tiles; Vᵀ is 36x800 -> 36x50 tiles.
        assert PAPER_LIBRARY.select_tile_shape(500, 36)[:2] == (50, 36)
        assert PAPER_LIBRARY.select_tile_shape(36, 800)[:2] == (36, 50)
        # LeNet fc2 (500x10 crossbar matrix) -> 50x10 tiles.
        assert PAPER_LIBRARY.select_tile_shape(500, 10)[:2] == (50, 10)
        # ConvNet conv1 factor over fan-in 75 -> 25-wide tiles; fc over 1024 -> 64.
        assert PAPER_LIBRARY.select_tile_shape(75, 12)[:2] == (25, 12)
        assert PAPER_LIBRARY.select_tile_shape(1024, 10)[:2] == (64, 10)

    def test_prime_dimension_padding_fallback(self):
        tile = PAPER_LIBRARY.select_tile_shape(127, 10)
        assert tile == (64, 10, True)
        strict = CrossbarLibrary(allow_padding=False)
        with pytest.raises(TilingError):
            strict.select_tile_shape(127, 10)

    def test_contains(self):
        assert PAPER_LIBRARY.contains(1, 1)
        assert PAPER_LIBRARY.contains(64, 64)
        assert not PAPER_LIBRARY.contains(65, 1)


class TestTiling:
    def test_grid_geometry(self):
        plan = plan_tiling(500, 36)
        assert plan.tile_shape() == (50, 36)
        assert plan.grid_rows == 10
        assert plan.grid_cols == 1
        assert plan.num_crossbars == 10
        assert not plan.is_single_crossbar

    def test_tile_bounds_and_iteration_cover_matrix(self):
        plan = plan_tiling(36, 800)
        covered = np.zeros((36, 800), dtype=int)
        for _, _, row_slice, col_slice in plan.iter_tiles():
            covered[row_slice, col_slice] += 1
        assert np.all(covered == 1)

    def test_dense_wire_count(self):
        plan = plan_tiling(500, 36)  # 10 tiles of 50x36
        assert plan.dense_wire_count() == 10 * (50 + 36)
        single = plan_tiling(50, 12)
        assert single.dense_wire_count() == 62

    def test_invalid_tile_index(self):
        plan = plan_tiling(100, 10)
        with pytest.raises(TilingError):
            plan.tile_bounds(99, 0)

    def test_non_divisible_requires_padded_flag(self):
        with pytest.raises(TilingError):
            TilingPlan(matrix_rows=10, matrix_cols=10, tile_rows=3, tile_cols=5)
        plan = TilingPlan(matrix_rows=10, matrix_cols=10, tile_rows=3, tile_cols=5, padded=True)
        assert plan.grid_rows == 4
        assert plan.allocated_cells >= plan.total_cells

    def test_instantiate_with_weights(self):
        plan = plan_tiling(100, 10)
        weights = np.zeros((100, 10))
        weights[:50, :] = 1.0
        instances = plan.instantiate(weights)
        assert len(instances) == plan.num_crossbars
        empty = sum(1 for inst in instances if inst.is_empty())
        assert empty == 1  # the lower 50x10 block is all zero

    def test_instantiate_shape_check(self):
        plan = plan_tiling(100, 10)
        with pytest.raises(TilingError):
            plan.instantiate(np.zeros((10, 100)))


class TestRouting:
    def test_count_remaining_wires_dense(self):
        plan = plan_tiling(100, 10)
        weights = np.ones((100, 10))
        assert count_remaining_wires(weights, plan) == plan.dense_wire_count()

    def test_count_remaining_wires_with_zero_groups(self):
        plan = plan_tiling(100, 10)  # 2 tiles of 50x10
        weights = np.ones((100, 10))
        weights[0, :] = 0.0  # one all-zero row group -> one less input wire
        weights[50:, 3] = 0.0  # one all-zero column group in tile 1
        assert count_remaining_wires(weights, plan) == plan.dense_wire_count() - 2

    def test_count_with_threshold(self):
        plan = plan_tiling(10, 10)
        weights = np.full((10, 10), 1e-6)
        assert count_remaining_wires(weights, plan, zero_threshold=1e-3) == 0

    def test_shape_mismatch(self):
        plan = plan_tiling(10, 10)
        with pytest.raises(ShapeError):
            count_remaining_wires(np.zeros((5, 5)), plan)

    def test_routing_area_quadratic(self):
        assert routing_area(10) == 100.0
        assert routing_area(0) == 0.0
        tech = TechnologyParameters(routing_alpha=2.5)
        assert routing_area(4, tech) == 40.0
        with pytest.raises(ValueError):
            routing_area(-1)

    def test_routing_area_from_lengths(self):
        assert routing_area_from_lengths([2.0, 3.0]) == pytest.approx(2.0 * 5.0)
        with pytest.raises(ValueError):
            routing_area_from_lengths([-1.0])

    def test_routing_report_properties(self):
        report = RoutingReport("fc1_u", dense_wires=100, remaining_wires=25)
        assert report.wire_fraction == 0.25
        assert report.deleted_fraction == 0.75
        assert report.deleted_wires == 75
        assert report.area_fraction == pytest.approx(0.0625)
        with pytest.raises(ValueError):
            RoutingReport("x", dense_wires=10, remaining_wires=11)

    def test_analyze_routing(self):
        plan = plan_tiling(100, 10, name="m")
        weights = np.ones((100, 10))
        weights[:50] = 0.0
        report = analyze_routing(weights, plan)
        assert report.name == "m"
        assert report.dense_wires == 120
        assert report.remaining_wires == 60


class TestArea:
    def test_matrix_and_layer_area(self):
        assert matrix_crossbar_area(10, 10) == 400.0
        assert dense_layer_area(20, 25) == 4 * 500
        assert factorized_layer_area(20, 25, 5) == 4 * (100 + 125)

    def test_factorized_rank_bound(self):
        assert area_reduction_rank_bound(20, 25) == pytest.approx(500 / 45)
        with pytest.raises(Exception):
            factorized_layer_area(20, 25, 21)

    def test_layer_area_fraction(self):
        assert layer_area_fraction(20, 25, None) == 1.0
        assert layer_area_fraction(20, 25, 5) == pytest.approx(225 / 500)

    def test_paper_lenet_headline_exact(self):
        fraction = network_area_fraction(PAPER_LENET_SHAPES, PAPER_LENET_RANKS)
        assert 100 * fraction == pytest.approx(13.62, abs=0.01)

    def test_paper_convnet_headline_exact(self):
        fraction = network_area_fraction(PAPER_CONVNET_SHAPES, PAPER_CONVNET_RANKS)
        assert 100 * fraction == pytest.approx(51.81, abs=0.01)

    def test_per_layer_fractions(self):
        fractions = per_layer_area_fractions(PAPER_LENET_SHAPES, PAPER_LENET_RANKS)
        assert fractions["fc2"] == 1.0  # unclipped classifier
        assert fractions["conv1"] == pytest.approx(0.45)
        assert fractions["fc1"] == pytest.approx((500 * 36 + 36 * 800) / (500 * 800))

    def test_network_area_fraction_validation(self):
        with pytest.raises(ValueError):
            network_area_fraction({}, {})

    def test_unclipped_network_fraction_is_one(self):
        fraction = network_area_fraction(PAPER_LENET_SHAPES, {})
        assert fraction == pytest.approx(1.0)
