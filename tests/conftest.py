"""Shared pytest fixtures and helpers for the test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

# Make the package importable even when it has not been pip-installed.
_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.data import ArrayDataset, DataLoader, make_gaussian_blobs  # noqa: E402
from repro.models import build_mlp  # noqa: E402
from repro.nn import SGD, SoftmaxCrossEntropy, Trainer  # noqa: E402


@pytest.fixture
def rng():
    """Deterministic generator for tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def blob_data():
    """Small, easy, normalized classification dataset (train, test)."""
    train, test = make_gaussian_blobs(
        num_classes=4, num_features=20, samples_per_class=40, separation=4.0, seed=7
    )
    mean, std = train.inputs.mean(), train.inputs.std()
    train = ArrayDataset((train.inputs - mean) / std, train.targets)
    test = ArrayDataset((test.inputs - mean) / std, test.targets)
    return train, test


@pytest.fixture
def small_mlp():
    """A small dense MLP matching the blob_data feature/class counts."""
    return build_mlp(20, [24, 16], 4, rng=3)


@pytest.fixture
def mlp_trainer_factory(blob_data):
    """Factory ``(network, callbacks) -> Trainer`` over the blob dataset."""
    train, test = blob_data

    def factory(network, callbacks=()):
        loader = DataLoader(train, batch_size=32, shuffle=True, rng=11)
        optimizer = SGD(network.parameters(), lr=0.05, momentum=0.9)
        return Trainer(
            network,
            SoftmaxCrossEntropy(),
            optimizer,
            loader,
            eval_data=test.arrays(),
            callbacks=list(callbacks),
            eval_interval=25,
        )

    return factory


def numerical_gradient(func, array, epsilon: float = 1e-6) -> np.ndarray:
    """Central-difference numerical gradient of ``func`` w.r.t. ``array`` entries."""
    grad = np.zeros_like(array, dtype=np.float64)
    it = np.nditer(array, flags=["multi_index"], op_flags=["readwrite"])
    while not it.finished:
        idx = it.multi_index
        original = array[idx]
        array[idx] = original + epsilon
        plus = func()
        array[idx] = original - epsilon
        minus = func()
        array[idx] = original
        grad[idx] = (plus - minus) / (2 * epsilon)
        it.iternext()
    return grad


@pytest.fixture
def grad_checker():
    """Expose the numerical-gradient helper as a fixture."""
    return numerical_gradient
