"""Tests for the experiment DAG (``repro.experiments.graph``).

Acceptance contract (PR 9): the graph is a faithful restructuring, not a
new pipeline — single-spec DAG execution (node mode, the scheduler's path)
must be **bit-identical** to ``execute_spec`` (same artifact fingerprints
and payloads), with resume, failure isolation, and retries behaving exactly
like the batch path.
"""

import json
import os

import pytest

from repro.exceptions import ExperimentError, PointFailureError
from repro.experiments import ExperimentSpec, RunStore, execute_spec
from repro.experiments.graph import GraphExecution, build_graph, run_graph
from repro.utils import faultinject

FAST = dict(
    train_samples=120,
    test_samples=48,
    baseline_iterations=30,
    clip_iterations=20,
    clip_interval=10,
    deletion_iterations=20,
    finetune_iterations=10,
    record_interval=10,
    eval_interval=20,
    batch_size=24,
)


def sweep_spec(**overrides) -> ExperimentSpec:
    spec = ExperimentSpec(
        kind="sweep",
        method="rank_clipping",
        workload="mlp",
        scale="tiny",
        scale_overrides=FAST,
        grid=(0.05, 0.3),
        name="graph-sweep",
    )
    return spec.with_updates(**overrides) if overrides else spec


@pytest.fixture(autouse=True)
def _no_leaked_faults():
    faultinject.uninstall()
    os.environ.pop(faultinject.ENV_VAR, None)
    yield
    faultinject.uninstall()
    os.environ.pop(faultinject.ENV_VAR, None)


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True)


def assert_artifacts_bit_identical(first, second):
    """Everything content-addressed must match; only timings/timestamps may differ."""
    for key in ("fingerprint", "name", "kind", "method", "result", "baseline", "complete"):
        assert canonical(first.get(key)) == canonical(second.get(key)), key
    points_a = {fp: entry["payload"] for fp, entry in first["points"].items()}
    points_b = {fp: entry["payload"] for fp, entry in second["points"].items()}
    assert canonical(points_a) == canonical(points_b)


class TestBuildGraph:
    def test_rank_clipping_shape(self):
        graph = build_graph(sweep_spec())
        ids = [node.id for node in graph.nodes]
        assert ids == ["baseline", "point:0", "point:1", "assemble"]
        assert graph.node("point:0").inputs == ("baseline",)
        assert graph.node("assemble").inputs == ("point:0", "point:1")

    def test_group_deletion_has_clip_node(self):
        graph = build_graph(sweep_spec(method="group_deletion"))
        ids = [node.id for node in graph.nodes]
        assert ids == ["baseline", "clip", "point:0", "point:1", "assemble"]
        assert graph.node("clip").inputs == ("baseline",)
        assert graph.node("point:0").inputs == ("baseline", "clip")

    def test_single_and_headline_shapes(self):
        table1 = build_graph(
            ExperimentSpec(kind="table1", workload="mlp", scale="tiny", scale_overrides=FAST)
        )
        assert [n.id for n in table1.nodes] == ["baseline", "single:table1", "assemble"]
        headline = build_graph(ExperimentSpec(kind="headline"))
        assert [n.id for n in headline.nodes] == ["headline", "assemble"]

    def test_point_nodes_carry_plan_fingerprints(self):
        spec = sweep_spec()
        graph = build_graph(spec)
        plan_fps = [point.fingerprint for point in graph.plan.points]
        node_fps = [graph.node(f"point:{i}").fingerprint for i in range(len(plan_fps))]
        assert node_fps == plan_fps

    def test_topological_order_and_unknown_node(self):
        graph = build_graph(sweep_spec())
        order = graph.topological_order()
        assert order.index("baseline") < order.index("point:0") < order.index("assemble")
        with pytest.raises(ExperimentError):
            graph.node("nope")

    def test_describe_names_every_node(self):
        text = build_graph(sweep_spec(method="group_deletion")).describe()
        for fragment in ("baseline", "clip", "lambda=0.05", "assemble"):
            assert fragment in text


class TestNodeModeBitIdentity:
    @pytest.mark.parametrize("method", ["rank_clipping", "group_deletion"])
    def test_sweep_matches_execute_spec(self, tmp_path, method):
        spec = sweep_spec(method=method)
        batch_store = RunStore(tmp_path / "batch")
        node_store = RunStore(tmp_path / "node")
        batch = execute_spec(spec, store=batch_store)
        node = run_graph(spec, store=node_store, node_mode=True, install_signals=False)
        assert batch.fingerprint == node.fingerprint
        assert canonical(batch.payload) == canonical(node.payload)
        assert_artifacts_bit_identical(
            batch_store.load(spec.fingerprint()), node_store.load(spec.fingerprint())
        )

    def test_single_kind_matches_execute_spec(self, tmp_path):
        spec = ExperimentSpec(
            kind="table1", workload="mlp", scale="tiny", scale_overrides=FAST
        )
        batch_store = RunStore(tmp_path / "batch")
        node_store = RunStore(tmp_path / "node")
        execute_spec(spec, store=batch_store)
        run_graph(spec, store=node_store, node_mode=True, install_signals=False)
        assert_artifacts_bit_identical(
            batch_store.load(spec.fingerprint()), node_store.load(spec.fingerprint())
        )

    def test_lockstep_cache_stats_match(self, tmp_path):
        spec = sweep_spec(method="group_deletion", mode="lockstep")
        batch_store = RunStore(tmp_path / "batch")
        node_store = RunStore(tmp_path / "node")
        batch = execute_spec(spec, store=batch_store)
        node = run_graph(spec, store=node_store, node_mode=True, install_signals=False)
        assert canonical(batch.payload) == canonical(node.payload)
        assert batch.payload["routing_cache_stats"] == node.payload["routing_cache_stats"]


class TestNodeModeExecution:
    def test_next_ready_walks_plan_order(self, tmp_path):
        spec = sweep_spec()
        execution = GraphExecution(
            spec, store=RunStore(tmp_path / "runs"), install_signals=False
        )
        execution.start()
        seen = []
        while not execution.finished():
            node_id = execution.next_ready()
            assert node_id is not None
            seen.append(node_id)
            execution.run_node(node_id)
        assert seen == ["baseline", "point:0", "point:1", "assemble"]
        assert execution.run_result is not None
        assert execution.run_result.computed_points == 2

    def test_complete_artifact_short_circuits(self, tmp_path):
        spec = sweep_spec()
        store = RunStore(tmp_path / "runs")
        execute_spec(spec, store=store)
        execution = GraphExecution(spec, store=store, install_signals=False)
        execution.start()
        assert execution.finished()
        assert execution.run_result.reused_points == len(execution.plan.points)
        assert set(execution.status.values()) == {"reused"}

    def test_node_mode_resumes_stored_points(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        run_graph(
            sweep_spec(grid=(0.05,)), store=store, node_mode=True, install_signals=False
        )
        execution = GraphExecution(
            sweep_spec(grid=(0.05, 0.3)), store=store, install_signals=False
        )
        execution.start()
        assert execution.status["point:0"] == "reused"
        result = execution.run(node_mode=True) if not execution.finished() else execution.run_result
        assert result.computed_points == 1
        assert result.reused_points == 1

    def test_run_node_rejects_unmet_dependencies(self, tmp_path):
        execution = GraphExecution(sweep_spec(), install_signals=False)
        execution.start()
        with pytest.raises(ExperimentError):
            execution.run_node("point:0")

    def test_events_stream_through_observer(self, tmp_path):
        events = []
        run_graph(
            sweep_spec(),
            store=RunStore(tmp_path / "runs"),
            node_mode=True,
            install_signals=False,
            observer=lambda node, status, detail: events.append((node.id, status)),
        )
        assert ("baseline", "running") in events
        assert ("baseline", "done") in events
        assert ("point:1", "done") in events
        assert ("assemble", "done") in events

    def test_storeless_node_mode_matches_batch(self):
        spec = sweep_spec()
        batch = execute_spec(spec)
        node = run_graph(spec, node_mode=True, install_signals=False)
        assert canonical(batch.payload) == canonical(node.payload)


class TestNodeModeResilience:
    def test_point_failure_is_isolated_and_retried(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        spec = sweep_spec(retry={"max_attempts": 2})
        plan = [{"site": "point", "kind": "raise", "index": 0, "attempts": [1]}]
        with faultinject.injected(plan):
            run = run_graph(spec, store=store, node_mode=True, install_signals=False)
        # Attempt 1 fails, attempt 2 (the RetryPolicy retry) succeeds.
        assert run.computed_points == 2
        assert run.failures == []

    def test_exhausted_point_fails_alone_and_resumes(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        spec = sweep_spec()
        with faultinject.injected([{"site": "point", "kind": "raise", "index": 0}]):
            run = run_graph(spec, store=store, node_mode=True, install_signals=False)
        assert run.computed_points == 1
        assert len(run.failures) == 1
        assert run.failures[0].label == "tolerance=0.05"
        artifact = store.load(spec.fingerprint())
        assert artifact["complete"] is False
        assert len(artifact["failures"]) == 1
        # The journaled good point resumes; only the failed one recomputes.
        healed = run_graph(spec, store=store, node_mode=True, install_signals=False)
        assert healed.computed_points == 1
        assert healed.reused_points == 1
        assert store.load(spec.fingerprint())["complete"] is True

    def test_every_point_failing_raises(self, tmp_path):
        with faultinject.injected([{"site": "point", "kind": "raise"}]):
            with pytest.raises(PointFailureError):
                run_graph(
                    sweep_spec(),
                    store=RunStore(tmp_path / "runs"),
                    node_mode=True,
                    install_signals=False,
                )

    def test_failed_node_status_is_recorded(self, tmp_path):
        events = []
        spec = sweep_spec()
        with faultinject.injected([{"site": "point", "kind": "raise", "index": 1}]):
            execution = GraphExecution(
                spec,
                store=RunStore(tmp_path / "runs"),
                install_signals=False,
                observer=lambda node, status, detail: events.append((node.id, status)),
            )
            execution.run(node_mode=True)
        assert execution.status["point:0"] == "done"
        assert execution.status["point:1"] == "failed"
        assert execution.status["assemble"] == "done"
        assert ("point:1", "failed") in events
