"""Tests for the run store: artifacts, resume, point reuse, compare/render.

The acceptance contract these tests guard: re-running a spec whose artifact
is complete performs **zero new training**; overlapping grids and different
engine policies reuse each other's point artifacts; stored artifacts rebuild
the same result views (``format_table``) without retraining.
"""

from pathlib import Path

import pytest

import repro.experiments.plan as plan_module
from repro.exceptions import ExperimentError
from repro.experiments import (
    ExperimentContext,
    ExperimentSpec,
    RunStore,
    build_plan,
    compare_artifacts,
    execute_spec,
    mlp_workload,
    render_artifact,
    spec_for_workload,
)
from repro.experiments.store import flatten_result

FAST = dict(
    train_samples=120,
    test_samples=48,
    baseline_iterations=30,
    clip_iterations=20,
    clip_interval=10,
    deletion_iterations=20,
    finetune_iterations=10,
    record_interval=10,
    eval_interval=20,
    batch_size=24,
)


def sweep_spec(**overrides) -> ExperimentSpec:
    spec = ExperimentSpec(
        kind="sweep",
        method="rank_clipping",
        workload="mlp",
        scale="tiny",
        scale_overrides=FAST,
        grid=(0.05, 0.3),
        name="store-sweep",
    )
    return spec.with_updates(**overrides) if overrides else spec


@pytest.fixture
def store(tmp_path):
    return RunStore(tmp_path / "runs")


def _forbid_training(monkeypatch):
    def boom(*args, **kwargs):  # pragma: no cover - failing is the assertion
        raise AssertionError("train_baseline was called on a fully-resumed run")

    monkeypatch.setattr(plan_module, "train_baseline", boom)


class TestArtifactLifecycle:
    def test_execute_persists_complete_artifact(self, store):
        spec = sweep_spec()
        run = execute_spec(spec, store=store)
        assert run.artifact_path is not None and run.artifact_path.exists()
        artifact = store.load(spec.fingerprint())
        assert artifact["complete"] is True
        assert artifact["name"] == "store-sweep"
        assert len(artifact["points"]) == 2
        assert artifact["baseline"]["accuracy"] is not None
        assert artifact["environment"]["python"]
        assert artifact["timings"]["total_s"] > 0
        # The embedded spec round-trips to the original.
        assert ExperimentSpec.from_dict(artifact["spec"]) == spec

    def test_find_and_list(self, store):
        spec = sweep_spec()
        execute_spec(spec, store=store)
        fingerprint = spec.fingerprint()
        assert store.find(fingerprint)["fingerprint"] == fingerprint
        assert store.find(fingerprint[:6])["fingerprint"] == fingerprint
        assert store.find("store-sweep")["fingerprint"] == fingerprint
        rows = store.list_runs()
        assert len(rows) == 1 and rows[0]["complete"]
        with pytest.raises(ExperimentError):
            store.find("no-such-run")

    def test_save_requires_fingerprint(self, store):
        with pytest.raises(ExperimentError):
            store.save({"name": "nope"})

    def test_delete(self, store):
        spec = sweep_spec()
        execute_spec(spec, store=store)
        assert store.delete(spec.fingerprint()) is True
        assert store.delete(spec.fingerprint()) is False
        assert store.load(spec.fingerprint()) is None

    def test_corrupt_artifact_treated_as_absent_and_healed(self, store):
        """A truncated artifact must not brick the store — it recomputes."""
        spec = sweep_spec()
        execute_spec(spec, store=store)
        store.path(spec.fingerprint()).write_text("{ truncated")
        assert store.load(spec.fingerprint()) is None
        assert store.list_runs() == []
        healed = execute_spec(spec, store=store)
        assert healed.computed_points == 2
        assert store.load(spec.fingerprint())["complete"] is True

    def test_corrupt_artifact_is_quarantined_not_deleted(self, store, caplog):
        """Unparseable artifacts move to ``<name>.json.corrupt`` for forensics."""
        spec = sweep_spec()
        execute_spec(spec, store=store)
        path = store.path(spec.fingerprint())
        path.write_text("{ truncated")
        assert store.load(spec.fingerprint()) is None
        quarantined = path.with_name(path.name + ".corrupt")
        assert quarantined.exists() and not path.exists()
        assert quarantined.read_text() == "{ truncated"
        assert any("quarantined" in record.message for record in caplog.records)
        # Quarantined files are invisible to every store listing/lookup.
        assert store.fingerprints() == []

    def test_tampered_payload_fails_checksum_and_quarantines(self, store):
        """Valid JSON with a modified payload must not load: sha256 guards it."""
        import json as json_module

        spec = sweep_spec()
        execute_spec(spec, store=store)
        path = store.path(spec.fingerprint())
        artifact = json_module.loads(path.read_text())
        assert "payload_sha256" in artifact
        artifact["result"]["baseline_accuracy"] = 0.123456
        path.write_text(json_module.dumps(artifact))
        assert store.load(spec.fingerprint()) is None
        assert path.with_name(path.name + ".corrupt").exists()

    def test_checksum_less_legacy_artifact_still_loads(self, store):
        """Artifacts written before the integrity check load unverified."""
        import json as json_module

        spec = sweep_spec()
        first = execute_spec(spec, store=store)
        path = store.path(spec.fingerprint())
        artifact = json_module.loads(path.read_text())
        del artifact["payload_sha256"]
        path.write_text(json_module.dumps(artifact))
        loaded = store.load(spec.fingerprint())
        assert loaded is not None and loaded["complete"] is True
        resumed = execute_spec(spec, store=store)
        assert resumed.computed_points == 0
        assert resumed.payload == first.payload

    def test_loaded_artifact_does_not_leak_the_checksum_field(self, store):
        spec = sweep_spec()
        execute_spec(spec, store=store)
        assert "payload_sha256" not in store.load(spec.fingerprint())

    def test_store_rejects_context_supplied_material(self, store):
        """Fingerprints cannot see context workloads/baselines — refuse the store."""
        workload = mlp_workload("tiny")
        spec = spec_for_workload("baseline", workload)
        with pytest.raises(ExperimentError, match="context-supplied"):
            execute_spec(
                spec, store=store, context=ExperimentContext(workload=workload)
            )


class TestResume:
    def test_complete_artifact_resumes_with_zero_training(self, store, monkeypatch):
        spec = sweep_spec()
        first = execute_spec(spec, store=store)
        _forbid_training(monkeypatch)
        second = execute_spec(spec, store=store)
        assert second.computed_points == 0
        assert second.reused_points == 2
        assert second.payload == first.payload
        assert second.result.points == first.result.points
        assert second.result.format_table() == first.result.format_table()

    def test_fresh_recomputes(self, store):
        spec = sweep_spec()
        first = execute_spec(spec, store=store)
        again = execute_spec(spec, store=store, resume=False)
        assert again.computed_points == 2
        assert again.result.points == first.result.points  # deterministic

    def test_grid_extension_reuses_stored_points(self, store):
        spec = sweep_spec()
        first = execute_spec(spec, store=store)
        extended = execute_spec(sweep_spec(grid=(0.05, 0.3, 0.6)), store=store)
        assert extended.reused_points == 2
        assert extended.computed_points == 1
        assert extended.result.points[:2] == first.result.points
        assert extended.result.baseline_accuracy == first.result.baseline_accuracy

    def test_engine_policy_change_reuses_points(self, store, monkeypatch):
        """Serial, parallel and lockstep artifacts share point results."""
        spec = sweep_spec(method="group_deletion", include_small_matrices=True, grid=(0.01, 0.08))
        first = execute_spec(spec, store=store)
        _forbid_training(monkeypatch)
        lockstep = execute_spec(spec.with_updates(mode="lockstep"), store=store)
        assert lockstep.computed_points == 0
        assert lockstep.result.points == first.result.points
        # A different spec fingerprint, so a second artifact exists...
        assert len(store.fingerprints()) == 2
        # ...whose points are all marked as reused.
        artifact = store.load(spec.with_updates(mode="lockstep").fingerprint())
        assert all(entry["reused"] for entry in artifact["points"].values())

    def test_single_kind_resume(self, store, monkeypatch):
        spec = ExperimentSpec(
            kind="table1", workload="mlp", scale="tiny", scale_overrides=FAST
        )
        first = execute_spec(spec, store=store)
        _forbid_training(monkeypatch)
        second = execute_spec(spec, store=store)
        assert second.computed_points == 0
        assert second.result.as_dict() == first.result.as_dict()
        assert second.result.format_table() == first.result.format_table()
        # Reloaded artifacts drop the in-memory training trace by design.
        assert second.result.clipping_result is None

    def test_headline_runs_without_store(self):
        run = execute_spec(ExperimentSpec(kind="headline"))
        assert run.artifact_path is None
        assert run.result.lenet_crossbar_area_percent > 0


class TestJournal:
    """The mid-run journal: atomic per-point progress under a plan fingerprint."""

    def test_append_load_round_trip(self, store):
        store.append_journal("planfp", "point-a", {"accuracy": 0.5, "ranks": {"d": 3}})
        store.append_journal("planfp", "point-b", {"accuracy": 0.75})
        loaded = store.load_journal("planfp")
        assert loaded == {
            "point-a": {"accuracy": 0.5, "ranks": {"d": 3}},
            "point-b": {"accuracy": 0.75},
        }

    def test_later_entries_win(self, store):
        store.append_journal("planfp", "point-a", {"accuracy": 0.5})
        store.append_journal("planfp", "point-a", {"accuracy": 0.9})
        assert store.load_journal("planfp")["point-a"] == {"accuracy": 0.9}

    def test_truncated_line_skipped(self, store, caplog):
        store.append_journal("planfp", "point-a", {"accuracy": 0.5})
        with open(store.journal_path("planfp"), "a", encoding="utf-8") as handle:
            handle.write('{"point": "point-b", "payl')  # torn write
        loaded = store.load_journal("planfp")
        assert set(loaded) == {"point-a"}
        assert any("journal" in record.message for record in caplog.records)

    def test_tampered_line_fails_checksum(self, store):
        store.append_journal("planfp", "point-a", {"accuracy": 0.5})
        path = store.journal_path("planfp")
        text = path.read_text().replace("0.5", "0.9")
        path.write_text(text)
        assert store.load_journal("planfp") == {}

    def test_clear(self, store):
        store.append_journal("planfp", "point-a", {"accuracy": 0.5})
        store.clear_journal("planfp")
        assert store.load_journal("planfp") == {}
        assert not store.journal_path("planfp").exists()

    def test_missing_journal_is_empty(self, store):
        assert store.load_journal("no-such-plan") == {}


class TestCompareAndRender:
    def test_render_artifact(self, store):
        spec = sweep_spec()
        execute_spec(spec, store=store)
        rendered = render_artifact(store.find("store-sweep"))
        assert spec.fingerprint() in rendered
        assert "Tolerance sweep" in rendered
        assert "complete=True" in rendered

    def test_compare_artifacts(self, store):
        narrow = sweep_spec()
        wide = sweep_spec(grid=(0.05, 0.3, 0.6), name="store-sweep-wide")
        execute_spec(narrow, store=store)
        execute_spec(wide, store=store)
        report = compare_artifacts(
            store.find("store-sweep"), store.find("store-sweep-wide")
        )
        assert "baseline_accuracy" in report
        assert "only in" in report  # the wide run has an extra point

    def test_flatten_result(self):
        flat = flatten_result(
            {"a": 1, "b": {"c": 2.5}, "d": [1, {"e": 3}], "skip": "text", "flag": True}
        )
        assert flat == {"a": 1.0, "b.c": 2.5, "d[0]": 1.0, "d[1].e": 3.0}

    def test_lookup_points_and_baseline(self, store):
        spec = sweep_spec()
        execute_spec(spec, store=store)
        plan = build_plan(spec)
        found = store.lookup_points(point.fingerprint for point in plan.points)
        assert set(found) == {point.fingerprint for point in plan.points}
        accuracy = store.lookup_baseline(plan.baseline_fingerprint)
        assert accuracy is not None
        assert store.lookup_baseline("0" * 16) is None


class TestStoreHealthFlags:
    def test_list_runs_flags_legacy_checksum_artifacts(self, store):
        import json as json_module

        spec = sweep_spec()
        execute_spec(spec, store=store)
        rows = store.list_runs()
        assert rows[0]["legacy_checksum"] is False
        path = store.path(spec.fingerprint())
        artifact = json_module.loads(path.read_text())
        del artifact["payload_sha256"]
        path.write_text(json_module.dumps(artifact))
        rows = store.list_runs()
        assert rows[0]["legacy_checksum"] is True
        assert rows[0]["complete"] is True  # legacy, not partial

    def test_quarantined_listing(self, store):
        spec = sweep_spec()
        execute_spec(spec, store=store)
        assert store.quarantined() == []
        path = store.path(spec.fingerprint())
        path.write_text("{ truncated")
        assert store.load(spec.fingerprint()) is None  # triggers quarantine
        assert store.quarantined() == [f"{spec.fingerprint()}.json.corrupt"]
        # Quarantined files stay out of the artifact namespace.
        assert store.fingerprints() == []


class TestJournalLocking:
    def test_concurrent_appends_never_interleave(self, store):
        """Threaded appenders (the fcntl-locked path) produce whole lines:
        every record survives the contention and none is corrupt."""
        import threading

        writers = 4
        per_writer = 25

        def append_many(writer):
            for index in range(per_writer):
                store.append_journal(
                    "spec-fp",
                    f"point-{writer}-{index}",
                    {"value": writer * 1000 + index, "blob": "x" * 256},
                )

        threads = [
            threading.Thread(target=append_many, args=(writer,))
            for writer in range(writers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        recovered = store.load_journal("spec-fp")
        assert len(recovered) == writers * per_writer
        for writer in range(writers):
            for index in range(per_writer):
                assert recovered[f"point-{writer}-{index}"]["value"] == (
                    writer * 1000 + index
                )
        # Every line parses and passes its checksum — none interleaved.
        lines = store.journal_path("spec-fp").read_text().splitlines()
        assert len(lines) == writers * per_writer

    def test_concurrent_processes_serialize_on_the_lock(self, store, tmp_path):
        """Two *processes* appending to one journal — the scenario the
        exclusive fcntl lock exists for — lose nothing."""
        import subprocess
        import sys as sys_module

        script = tmp_path / "appender.py"
        script.write_text(
            "import sys\n"
            "sys.path.insert(0, sys.argv[3])\n"
            "from repro.experiments.store import RunStore\n"
            "store = RunStore(sys.argv[1])\n"
            "writer = sys.argv[2]\n"
            "for index in range(20):\n"
            "    store.append_journal('fp', f'p-{writer}-{index}', {'i': index})\n"
        )
        src = str(Path(__file__).resolve().parents[1] / "src")
        procs = [
            subprocess.Popen(
                [sys_module.executable, str(script), str(store.root), str(writer), src]
            )
            for writer in range(2)
        ]
        for proc in procs:
            assert proc.wait(timeout=60) == 0
        recovered = store.load_journal("fp")
        assert len(recovered) == 40
