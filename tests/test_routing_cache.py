"""Edge-case tests for ``RoutingAnalysisCache.export_entries`` / ``merge_entries``.

The sweep engines thread these entries between points and across worker
processes (PR 3), so the merge semantics — overlap handling, empty exports,
plan-sensitivity of the keys, eviction, counter hygiene — are load-bearing.
"""

import numpy as np
import pytest

from repro.hardware.library import CrossbarLibrary
from repro.hardware.routing import RoutingAnalysisCache, analyze_routing
from repro.hardware.technology import TechnologyParameters
from repro.hardware.tiling import TilingPlan, plan_tiling


def small_plan(tile=4, rows=16, cols=12, name="m"):
    library = CrossbarLibrary(
        technology=TechnologyParameters(max_crossbar_rows=tile, max_crossbar_cols=tile)
    )
    return plan_tiling(rows, cols, library=library, name=name)


@pytest.fixture
def weights(rng):
    values = rng.standard_normal((16, 12))
    values[np.abs(values) < 0.4] = 0.0
    return values


class TestExportEntries:
    def test_empty_cache_exports_nothing(self):
        assert RoutingAnalysisCache().export_entries() == []

    def test_entries_are_plain_values_and_round_trip(self, weights):
        cache = RoutingAnalysisCache()
        plan = small_plan()
        report = cache.analyze(weights, plan)
        entries = cache.export_entries()
        assert len(entries) == 1
        ((key, remaining),) = entries
        assert isinstance(key, tuple)
        assert remaining == report.remaining_wires
        # Exporting does not consume the cache or its counters.
        assert cache.stats() == {"hits": 0, "misses": 1, "size": 1}


class TestMergeEntries:
    def test_merge_none_and_empty(self):
        cache = RoutingAnalysisCache()
        assert cache.merge_entries(None) == 0
        assert cache.merge_entries([]) == 0
        assert len(cache) == 0

    def test_merge_overlapping_entry_sets(self, weights, rng):
        plan = small_plan()
        # Distinct live masks (a dense matrix would alias another dense one:
        # the cache keys the *mask*, not the values).
        other_weights = rng.standard_normal((16, 12))
        other_weights[:3, :] = 0.0
        third = rng.standard_normal((16, 12))
        third[:, :5] = 0.0

        donor_a = RoutingAnalysisCache()
        donor_a.analyze(weights, plan)
        donor_a.analyze(other_weights, plan)
        donor_b = RoutingAnalysisCache()
        donor_b.analyze(weights, plan)  # overlaps donor_a
        donor_b.analyze(third, plan)

        merged = RoutingAnalysisCache()
        assert merged.merge_entries(donor_a.export_entries()) == 2
        # Only donor_b's new mask lands; the overlap is kept, not replaced.
        assert merged.merge_entries(donor_b.export_entries()) == 1
        assert len(merged) == 3
        # Merged entries serve hits with values identical to fresh analyses.
        for values in (weights, other_weights, third):
            report = merged.analyze(values, plan)
            assert report.remaining_wires == analyze_routing(values, plan).remaining_wires
        assert merged.stats()["hits"] == 3
        assert merged.stats()["misses"] == 0

    def test_identical_masks_different_plans_stay_distinct(self, weights):
        # Same live mask (same fingerprint input) under two tilings must key
        # two entries: the wire counts genuinely differ.
        plan_small = small_plan(tile=4)
        plan_large = small_plan(tile=8)
        donor = RoutingAnalysisCache()
        small_report = donor.analyze(weights, plan_small)
        large_report = donor.analyze(weights, plan_large)
        assert len(donor) == 2
        assert small_report.remaining_wires != large_report.remaining_wires

        merged = RoutingAnalysisCache()
        assert merged.merge_entries(donor.export_entries()) == 2
        assert merged.analyze(weights, plan_small).remaining_wires == small_report.remaining_wires
        assert merged.analyze(weights, plan_large).remaining_wires == large_report.remaining_wires
        assert merged.stats() == {"hits": 2, "misses": 0, "size": 2}

    def test_relabelled_plan_shares_entries(self, weights):
        # Plan keys ignore the cosmetic name: fc1_u and a relabelled clone of
        # the same geometry hit the same entry.
        plan_a = small_plan(name="fc1_u")
        plan_b = TilingPlan(
            matrix_rows=plan_a.matrix_rows,
            matrix_cols=plan_a.matrix_cols,
            tile_rows=plan_a.tile_rows,
            tile_cols=plan_a.tile_cols,
            name="fc2_u",
        )
        cache = RoutingAnalysisCache()
        cache.analyze(weights, plan_a)
        report = cache.analyze(weights, plan_b)
        assert cache.stats() == {"hits": 1, "misses": 1, "size": 1}
        assert report.name == "fc2_u"

    def test_merge_respects_maxsize_eviction(self, rng):
        plan = small_plan()
        donor = RoutingAnalysisCache()
        for index in range(4):
            values = rng.standard_normal((16, 12))
            values[index * 4 : index * 4 + 4, :] = 0.0  # distinct live mask each
            donor.analyze(values, plan)
        assert len(donor) == 4
        tiny = RoutingAnalysisCache(maxsize=2)
        added = tiny.merge_entries(donor.export_entries())
        assert added == 4  # every entry was new when it arrived...
        assert len(tiny) == 2  # ...but only the newest maxsize survive
        # The survivors are the most recently merged entries (FIFO eviction).
        surviving = {key for key, _ in tiny.export_entries()}
        donor_keys = [key for key, _ in donor.export_entries()]
        assert surviving == set(donor_keys[-2:])

    def test_merge_leaves_hit_miss_counters_untouched(self, weights):
        donor = RoutingAnalysisCache()
        donor.analyze(weights, small_plan())
        receiver = RoutingAnalysisCache()
        receiver.merge_entries(donor.export_entries())
        assert receiver.stats() == {"hits": 0, "misses": 0, "size": 1}
