"""Tests for the core configuration objects and dense→low-rank conversion."""

import numpy as np
import pytest

from repro.core import (
    GroupDeletionConfig,
    RankClippingConfig,
    ScissorConfig,
    convert_to_lowrank,
    current_ranks,
    default_clippable_layers,
    direct_lra,
)
from repro.exceptions import ConfigurationError
from repro.models import ConvNetConfig, LeNetConfig, build_convnet, build_lenet, build_mlp
from repro.nn import Conv2D, Linear, LowRankConv2D, LowRankLinear


class TestConfigs:
    def test_rank_clipping_defaults_valid(self):
        config = RankClippingConfig()
        assert config.tolerance == 0.03
        assert config.method == "pca"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tolerance": -0.1},
            {"tolerance": 1.5},
            {"clip_interval": 0},
            {"max_iterations": -1},
            {"method": "qr"},
            {"min_rank": 0},
            {"layers": ()},
        ],
    )
    def test_rank_clipping_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            RankClippingConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"strength": -1.0},
            {"iterations": -1},
            {"finetune_iterations": -2},
            {"zero_threshold": -0.1},
            {"relative_threshold": 1.0},
            {"layers": ()},
        ],
    )
    def test_group_deletion_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            GroupDeletionConfig(**kwargs)

    def test_scissor_config_composition(self):
        config = ScissorConfig(
            rank_clipping=RankClippingConfig(tolerance=0.01),
            group_deletion=GroupDeletionConfig(strength=0.1),
            exclude_layers=("fc2",),
        )
        assert config.rank_clipping.tolerance == 0.01
        with pytest.raises(ConfigurationError):
            ScissorConfig(rank_clipping="not a config")


class TestDefaultClippableLayers:
    def test_excludes_final_classifier(self):
        assert default_clippable_layers(build_mlp(10, [8, 6], 3, rng=0)) == ("fc1", "fc2")
        lenet = build_lenet(LeNetConfig.small(image_size=14), rng=0)
        assert default_clippable_layers(lenet) == ("conv1", "conv2", "fc1")
        convnet = build_convnet(ConvNetConfig.small(), rng=0)
        assert default_clippable_layers(convnet) == ("conv1", "conv2", "conv3")


class TestConvertToLowRank:
    def test_full_rank_conversion_preserves_function(self):
        net = build_mlp(12, [10, 8], 4, rng=0)
        converted = convert_to_lowrank(net)
        x = np.random.default_rng(0).normal(size=(6, 12))
        assert np.allclose(converted.forward(x), net.forward(x))

    def test_converted_layer_types(self):
        lenet = build_lenet(LeNetConfig.small(image_size=14), rng=0)
        converted = convert_to_lowrank(lenet)
        assert isinstance(converted.get_layer("conv1"), LowRankConv2D)
        assert isinstance(converted.get_layer("fc1"), LowRankLinear)
        # The classifier stays dense.
        assert isinstance(converted.get_layer("fc2"), Linear)
        # The original network is untouched.
        assert isinstance(lenet.get_layer("conv1"), Conv2D)

    def test_full_rank_conv_conversion_preserves_function(self):
        lenet = build_lenet(LeNetConfig.small(image_size=14), rng=0)
        converted = convert_to_lowrank(lenet)
        x = np.random.default_rng(1).normal(size=(2, 1, 14, 14))
        assert np.allclose(converted.forward(x), lenet.forward(x), atol=1e-10)

    def test_rank_truncation(self):
        net = build_mlp(12, [10], 4, rng=0)
        converted = convert_to_lowrank(net, ranks={"fc1": 3}, layers=("fc1",))
        assert converted.get_layer("fc1").rank == 3
        assert current_ranks(converted) == {"fc1": 3}

    def test_unknown_layer_rejected(self):
        net = build_mlp(12, [10], 4, rng=0)
        with pytest.raises(ConfigurationError):
            convert_to_lowrank(net, layers=("nonexistent",))

    def test_biases_preserved(self):
        net = build_mlp(12, [10], 4, rng=0)
        net.get_layer("fc1").bias.data[:] = 7.0
        converted = convert_to_lowrank(net, ranks={"fc1": 5}, layers=("fc1",))
        assert np.allclose(converted.get_layer("fc1").bias.data, 7.0)

    def test_already_lowrank_layers_copied(self):
        net = build_mlp(12, [10], 4, rng=0)
        once = convert_to_lowrank(net)
        twice = convert_to_lowrank(once, layers=("fc1",))
        x = np.random.default_rng(2).normal(size=(3, 12))
        assert np.allclose(once.forward(x), twice.forward(x))


class TestDirectLRA:
    def test_accuracy_degrades_then_matches_best_truncation(self):
        rng = np.random.default_rng(3)
        net = build_mlp(16, [12], 4, rng=4)
        truncated = direct_lra(net, {"fc1": 2})
        x = rng.normal(size=(5, 16))
        # The truncated network generally computes a different function...
        assert not np.allclose(truncated.forward(x), net.forward(x))
        # ...whose fc1 weight is the optimal rank-2 approximation.
        fc1 = truncated.get_layer("fc1")
        w = net.get_layer("fc1").weight.data
        u, s, vt = np.linalg.svd(w, full_matrices=False)
        best = (u[:, :2] * s[:2]) @ vt[:2]
        assert np.allclose(fc1.effective_weight(), best, atol=1e-8)

    def test_requires_ranks(self):
        net = build_mlp(16, [12], 4, rng=0)
        with pytest.raises(ConfigurationError):
            direct_lra(net, {})
