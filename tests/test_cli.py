"""Tests for the ``python -m repro`` command line (run/list/show/compare/bench)."""

import json
import os

import pytest

from repro.experiments import ExperimentSpec
from repro.experiments.cli import _load_benchmark_runner, main
from repro.utils import faultinject

FAST = dict(
    train_samples=120,
    test_samples=48,
    baseline_iterations=30,
    clip_iterations=20,
    clip_interval=10,
    deletion_iterations=20,
    finetune_iterations=10,
    record_interval=10,
    eval_interval=20,
    batch_size=24,
)


@pytest.fixture
def spec_file(tmp_path):
    spec = ExperimentSpec(
        kind="sweep",
        method="rank_clipping",
        workload="mlp",
        scale="tiny",
        scale_overrides=FAST,
        grid=(0.05, 0.3),
        name="cli-sweep",
    )
    path = tmp_path / "cli_sweep.json"
    path.write_text(spec.to_json())
    return spec, path


class TestList:
    def test_lists_presets_and_store(self, tmp_path, capsys):
        assert main(["list", "--store", str(tmp_path / "empty")]) == 0
        out = capsys.readouterr().out
        for preset in ("table1", "table3", "figure3", "figure5", "figure6", "figure7", "figure8", "headline"):
            assert preset in out
        assert "(empty)" in out


    def test_list_json_is_machine_readable(self, tmp_path, spec_file, capsys):
        spec, path = spec_file
        store = str(tmp_path / "runs")
        assert main(["run", str(path), "--store", store, "--quiet"]) == 0
        capsys.readouterr()

        assert main(["list", "--store", store, "--json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        assert {p["name"] for p in listing["presets"]} >= {"table1", "figure6", "headline"}
        runs = listing["store"]["runs"]
        assert len(runs) == 1
        row = runs[0]
        assert row["fingerprint"] == spec.fingerprint()
        assert row["complete"] is True
        assert row["failures"] == 0
        assert row["legacy_checksum"] is False
        assert listing["store"]["quarantined"] == []

    def test_list_json_empty_store(self, tmp_path, capsys):
        assert main(["list", "--store", str(tmp_path / "none"), "--json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        assert listing["store"]["runs"] == []


class TestRun:
    def test_run_spec_file_then_resume_show_compare(self, tmp_path, spec_file, capsys):
        spec, path = spec_file
        store = str(tmp_path / "runs")

        assert main(["run", str(path), "--store", store]) == 0
        out = capsys.readouterr().out
        assert "Tolerance sweep" in out
        assert spec.fingerprint() in out
        assert "2 computed, 0 reused" in out

        # Second invocation resumes the complete artifact: zero new points.
        assert main(["run", str(path), "--store", store]) == 0
        assert "0 computed, 2 reused" in capsys.readouterr().out

        assert main(["show", "cli-sweep", "--store", store]) == 0
        shown = capsys.readouterr().out
        assert spec.fingerprint() in shown
        assert "Tolerance sweep" in shown

        assert main(["compare", "cli-sweep", spec.fingerprint()[:8], "--store", store]) == 0
        assert "baseline_accuracy" in capsys.readouterr().out

    def test_run_preset_with_overrides_json_output(self, tmp_path, capsys):
        store = tmp_path / "runs"
        rc = main(
            [
                "run",
                "baseline",
                "--workload",
                "mlp",
                "--scale",
                "tiny",
                "--workers",
                "1",
                "--store",
                str(store),
                "--json",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["workload"] == "mlp"
        assert payload["result"]["accuracy"] is not None
        assert (store / f"{payload['fingerprint']}.json").exists()

    def test_run_grid_override(self, tmp_path, spec_file, capsys):
        _, path = spec_file
        store = str(tmp_path / "runs")
        assert main(["run", str(path), "--grid", "0.05", "--store", store]) == 0
        assert "1 computed" in capsys.readouterr().out

    def test_no_store_skips_artifact(self, tmp_path, spec_file, capsys):
        _, path = spec_file
        assert main(["run", str(path), "--no-store", "--quiet"]) == 0
        assert "artifact:" not in capsys.readouterr().out

    def test_unknown_experiment_errors(self, capsys):
        assert main(["run", "table9"]) == 2
        err = capsys.readouterr().err
        assert "table9" in err
        assert "table1" in err  # the registered presets are listed

    def test_show_unknown_errors(self, tmp_path, capsys):
        assert main(["show", "missing", "--store", str(tmp_path / "runs")]) == 2
        assert "missing" in capsys.readouterr().err

    def test_boolean_flags_can_disable_preset_defaults(self):
        """Presets defaulting include_small_matrices=True must be overridable."""
        from repro.experiments.cli import _resolve_spec, build_parser

        parser = build_parser()
        on = _resolve_spec(parser.parse_args(["run", "figure8"]))
        assert on.include_small_matrices is True
        off = _resolve_spec(
            parser.parse_args(["run", "figure8", "--no-include-small-matrices"])
        )
        assert off.include_small_matrices is False


class TestExitCodes:
    """0 clean · 1 aborted · 2 usage · 3 partial — the documented contract."""

    @pytest.fixture(autouse=True)
    def _no_leaked_faults(self, monkeypatch):
        # ``--faults`` exports $REPRO_FAULTS via os.environ (so worker
        # processes inherit it); monkeypatch only undoes its *own* edits, so
        # pop explicitly on teardown or the plan leaks into later test files.
        monkeypatch.delenv(faultinject.ENV_VAR, raising=False)
        faultinject.uninstall()
        yield
        os.environ.pop(faultinject.ENV_VAR, None)
        faultinject.uninstall()

    def test_partial_run_exits_3_then_resumes_to_0(
        self, tmp_path, spec_file, capsys
    ):
        _, path = spec_file
        store = str(tmp_path / "runs")
        faults = json.dumps([{"site": "point", "kind": "raise", "index": 1}])
        assert main(["run", str(path), "--store", store, "--faults", faults]) == 3
        out = capsys.readouterr().out
        assert "1 computed" in out and "1 FAILED" in out
        # Re-running without faults heals the failed point only.  (--faults
        # exports $REPRO_FAULTS for worker processes; a real CLI invocation
        # is its own process, here we must clear it by hand.)
        os.environ.pop(faultinject.ENV_VAR, None)
        assert main(["run", str(path), "--store", store]) == 0
        assert "1 computed, 1 reused" in capsys.readouterr().out

    def test_partial_json_output_carries_failures(self, tmp_path, spec_file, capsys):
        _, path = spec_file
        faults = json.dumps([{"site": "point", "kind": "raise", "index": 0}])
        rc = main(
            ["run", str(path), "--store", str(tmp_path / "runs"),
             "--faults", faults, "--json"]
        )
        assert rc == 3
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed_points"][0]["error_type"] == "InjectedFault"

    def test_strict_failure_exits_1(self, tmp_path, spec_file, capsys):
        _, path = spec_file
        faults = json.dumps([{"site": "point", "kind": "raise", "index": 0}])
        rc = main(
            ["run", str(path), "--store", str(tmp_path / "runs"),
             "--faults", faults, "--strict"]
        )
        assert rc == 1
        assert "strict" in capsys.readouterr().err

    def test_interrupted_run_exits_1_and_persists_partial(
        self, tmp_path, spec_file, capsys
    ):
        spec, path = spec_file
        store = str(tmp_path / "runs")
        faults = json.dumps([{"site": "point", "kind": "interrupt", "index": 1}])
        assert main(["run", str(path), "--store", store, "--faults", faults]) == 1
        assert "interrupted" in capsys.readouterr().err
        # The drained partial artifact is resumable.
        os.environ.pop(faultinject.ENV_VAR, None)
        assert main(["run", str(path), "--store", store]) == 0
        assert "1 computed, 1 reused" in capsys.readouterr().out

    def test_bad_faults_json_is_usage_error(self, spec_file, capsys):
        _, path = spec_file
        assert main(["run", str(path), "--no-store", "--faults", "{nope"]) == 2
        assert "fault plan is not valid JSON" in capsys.readouterr().err

    def test_retry_flags_reach_the_engine(self, spec_file):
        from repro.experiments.cli import _resolve_spec, build_parser

        _, path = spec_file
        parser = build_parser()
        args = parser.parse_args(
            ["run", str(path), "--max-attempts", "3",
             "--retry-backoff", "0.5", "--point-timeout", "90"]
        )
        spec = _resolve_spec(args)
        assert spec.engine.retry.max_attempts == 3
        assert spec.engine.retry.backoff_s == 0.5
        assert spec.engine.retry.timeout_s == 90.0
        # Execution policy only: the fingerprint is unchanged.
        assert spec.fingerprint() == _resolve_spec(
            parser.parse_args(["run", str(path)])
        ).fingerprint()


class TestBench:
    def test_bench_list_matches_registry(self, capsys):
        """CLI suite names and the benchmark registry share one source."""
        assert main(["bench", "--list"]) == 0
        listed = capsys.readouterr().out.split()
        runner = _load_benchmark_runner()
        assert tuple(listed) == runner.suite_names()
        assert set(listed) == {"kernels", "sweeps", "lockstep", "hardware", "serving"}


class TestLint:
    def test_lint_default_tree_is_clean(self, capsys):
        assert main(["lint"]) == 0
        assert "clean:" in capsys.readouterr().out

    def test_lint_nonzero_on_violation(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nx = np.random.rand(3)\n")
        assert main(["lint", str(bad), "--root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "bad.py:2" in out
        assert "unseeded-random" in out

    def test_lint_json_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nx = np.random.rand(3)\n")
        assert main(["lint", str(bad), "--root", str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert payload["findings"][0]["rule"] == "unseeded-random"

    def test_lint_rule_subset(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nx = np.random.rand(3)\n")
        assert (
            main(["lint", str(bad), "--rules", "dtype-literal,mutable-default"]) == 0
        )
        capsys.readouterr()

    def test_lint_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("unseeded-random", "dtype-literal", "fingerprint-coverage"):
            assert rule_id in out

    def test_lint_unknown_rule_is_usage_error(self, capsys):
        assert main(["lint", "--rules", "no-such-rule"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_lint_missing_path_is_usage_error(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope")]) == 2
        assert "do not exist" in capsys.readouterr().err


class TestListHealthFlags:
    def test_flags_legacy_and_quarantined_artifacts(self, tmp_path, capsys):
        from repro.experiments.store import CHECKSUM_FIELD, RunStore

        store_root = tmp_path / "runs"
        store = RunStore(store_root)
        store.save(
            {
                "fingerprint": "aaaa1111",
                "name": "legacy",
                "kind": "sweep",
                "workload": "mlp",
                "scale": "tiny",
                "points": {},
                "complete": True,
                "updated": "2026-01-01T00:00:00",
            }
        )
        # Strip the checksum to fabricate a pre-checksum-era artifact, and
        # drop a torn write beside it to exercise quarantine rendering.
        path = store.path("aaaa1111")
        artifact = json.loads(path.read_text())
        del artifact[CHECKSUM_FIELD]
        path.write_text(json.dumps(artifact))
        (store_root / "bbbb2222.json").write_text('{"torn')

        assert main(["list", "--store", str(store_root)]) == 0
        out = capsys.readouterr().out
        assert "no-checksum" in out
        assert "quarantined (corrupt, kept for inspection): 1 file(s)" in out
        assert "bbbb2222.json.corrupt" in out


class TestServeBench:
    @pytest.fixture(autouse=True)
    def _no_leaked_faults(self, monkeypatch):
        # serve-bench --faults exports $REPRO_FAULTS; scrub it either way.
        monkeypatch.delenv(faultinject.ENV_VAR, raising=False)
        faultinject.uninstall()
        yield
        os.environ.pop(faultinject.ENV_VAR, None)
        faultinject.uninstall()

    def test_drill_exits_zero_and_prints_recovery_evidence(self, capsys):
        assert main(["serve-bench", "--drill"]) == 0
        out = capsys.readouterr().out
        assert "circuit opened" in out
        assert "degraded responses" in out
        assert "recovered: state=healthy" in out
        assert "drained" in out

    def test_load_levels_json_accounts_every_request(self, capsys):
        assert main(["serve-bench", "--requests", "24", "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert set(stats["levels"]) == {"0.5x", "1x", "2x"}
        for level in stats["levels"].values():
            accounted = level["completed"] + sum(level["rejections"].values())
            assert accounted == level["requests"]
