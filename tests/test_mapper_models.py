"""Tests for the network-to-crossbar mapper, hardware reports and model builders."""

import numpy as np
import pytest

from repro.core import convert_to_lowrank
from repro.exceptions import ConfigurationError, MappingError
from repro.hardware import NetworkMapper, extract_crossbar_matrices
from repro.models import (
    PAPER_CONVNET_SHAPES,
    PAPER_LENET_SHAPES,
    ConvNetConfig,
    LeNetConfig,
    build_convnet,
    build_lenet,
    build_mlp,
    mlp_layer_shapes,
)
from repro.nn import ReLU, Sequential


class TestLeNetModel:
    def test_paper_layer_shapes(self):
        shapes = LeNetConfig.paper().layer_shapes()
        assert shapes == {
            "conv1": (20, 25),
            "conv2": (50, 500),
            "fc1": (500, 800),
            "fc2": (10, 500),
        }
        assert shapes == PAPER_LENET_SHAPES

    def test_forward_shape_paper(self):
        net = build_lenet(LeNetConfig.paper(), rng=0)
        x = np.zeros((2, 1, 28, 28))
        assert net.forward(x).shape == (2, 10)
        assert net.output_shape((1, 28, 28)) == (10,)

    def test_small_variant(self):
        config = LeNetConfig.small(image_size=14, scale=0.2)
        net = build_lenet(config, rng=0)
        assert net.forward(np.zeros((1, 1, 14, 14))).shape == (1, 10)

    def test_clippable_layers_exclude_classifier(self):
        assert LeNetConfig.paper().clippable_layers() == ("conv1", "conv2", "fc1")

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            LeNetConfig(image_size=6)
        with pytest.raises(ConfigurationError):
            LeNetConfig.small(scale=0.0)


class TestConvNetModel:
    def test_paper_layer_shapes(self):
        shapes = ConvNetConfig.paper().layer_shapes()
        assert shapes == {
            "conv1": (32, 75),
            "conv2": (32, 800),
            "conv3": (64, 800),
            "fc1": (10, 1024),
        }
        assert shapes == PAPER_CONVNET_SHAPES

    def test_forward_shape_paper(self):
        net = build_convnet(ConvNetConfig.paper(), rng=0)
        assert net.forward(np.zeros((1, 3, 32, 32))).shape == (1, 10)

    def test_small_variant(self):
        config = ConvNetConfig.small(image_size=16, scale=0.25)
        net = build_convnet(config, rng=0)
        assert net.forward(np.zeros((2, 3, 16, 16))).shape == (2, 10)

    def test_total_dense_area_matches_paper(self):
        shapes = ConvNetConfig.paper().layer_shapes()
        total_cells = sum(n * m for n, m in shapes.values())
        assert total_cells == 89440  # denominators behind the 51.81 % number


class TestMLPModel:
    def test_structure_and_shapes(self):
        net = build_mlp(12, [8, 6], 3, rng=0)
        assert [l.name for l in net if not isinstance(l, ReLU)] == ["fc1", "fc2", "fc3"]
        assert mlp_layer_shapes(12, [8, 6], 3) == {
            "fc1": (8, 12),
            "fc2": (6, 8),
            "fc3": (3, 6),
        }

    def test_requires_hidden_layers(self):
        with pytest.raises(ConfigurationError):
            build_mlp(4, [], 2)


class TestMapper:
    def test_extract_matrices_dense(self):
        net = build_mlp(12, [8], 3, rng=0)
        matrices = extract_crossbar_matrices(net)
        assert [m.name for m in matrices] == ["fc1_w", "fc2_w"]
        # inputs x outputs orientation
        assert matrices[0].values.shape == (12, 8)

    def test_extract_matrices_lowrank(self):
        net = convert_to_lowrank(build_mlp(12, [8], 3, rng=0), layers=("fc1",))
        matrices = extract_crossbar_matrices(net)
        names = [m.name for m in matrices]
        assert names == ["fc1_v", "fc1_u", "fc2_w"]
        v = next(m for m in matrices if m.name == "fc1_v")
        u = next(m for m in matrices if m.name == "fc1_u")
        assert v.values.shape == (12, 8)  # in_features x rank (full rank 8)
        assert u.values.shape == (8, 8)  # rank x out_features

    def test_extract_rejects_weightless_network(self):
        net = Sequential([ReLU(name="r")])
        with pytest.raises(MappingError):
            extract_crossbar_matrices(net)

    def test_lenet_dense_report_areas(self):
        net = build_lenet(LeNetConfig.paper(), rng=0)
        report = NetworkMapper().map_network(net)
        # Total dense crossbar area = 4F^2 * total cells (430500 cells).
        assert report.total_crossbar_area_f2 == pytest.approx(4 * 430500)
        assert report.matrix("fc1_w").matrix_shape == (800, 500)
        assert report.matrix("fc1_w").tile_shape == (50, 50)
        assert report.layer("conv1").crossbar_area_f2 == pytest.approx(4 * 500)

    def test_clipped_lenet_area_fraction_matches_closed_form(self):
        from repro.models.lenet import PAPER_LENET_RANKS

        dense = build_lenet(LeNetConfig.paper(), rng=0)
        clipped = convert_to_lowrank(dense, ranks=PAPER_LENET_RANKS)
        mapper = NetworkMapper()
        fraction = mapper.area_fraction(clipped, dense)
        assert 100 * fraction == pytest.approx(13.62, abs=0.01)

    def test_big_matrices_listing(self):
        dense = build_lenet(LeNetConfig.paper(), rng=0)
        mapper = NetworkMapper()
        big = mapper.big_matrices(dense)
        assert "conv1_w" not in big  # 25x20 fits in one crossbar
        assert "fc1_w" in big and "fc2_w" in big and "conv2_w" in big

    def test_report_lookup_and_format(self):
        net = build_mlp(100, [80], 10, rng=0)
        report = NetworkMapper().map_network(net)
        assert report.layer("fc1").layer_name == "fc1"
        with pytest.raises(KeyError):
            report.layer("nope")
        with pytest.raises(KeyError):
            report.matrix("nope")
        table = report.format_table()
        assert "fc1_w" in table and "total crossbar area" in table
        payload = report.as_dict()
        assert payload["fc1_w"]["shape"] == [100, 80]

    def test_wire_accounting_with_pruned_weights(self):
        net = build_mlp(100, [80], 10, rng=0)
        fc1 = net.get_layer("fc1")
        fc1.weight.data[:, :50] = 0.0  # zero the first 50 input columns
        report = NetworkMapper().map_network(net)
        matrix = report.matrix("fc1_w")
        assert matrix.routing.remaining_wires < matrix.routing.dense_wires

    def test_mean_layer_fractions(self):
        net = build_mlp(100, [80], 10, rng=0)
        report = NetworkMapper().map_network(net)
        assert report.mean_layer_wire_fraction() == pytest.approx(1.0)
        assert report.mean_layer_routing_area_fraction() == pytest.approx(1.0)

    def test_zero_threshold_validation(self):
        with pytest.raises(MappingError):
            NetworkMapper(zero_threshold=-1.0)
