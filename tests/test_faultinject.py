"""Unit tests for the deterministic fault-injection hook.

These tests never train anything: they pin down the *trigger semantics* the
chaos suites (``tests/test_resilience.py``) build on — a fault plan must make
the same decision at the same coordinates in every process, every run.
"""

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.utils import faultinject
from repro.utils.faultinject import (
    ENV_VAR,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    corrupt_file,
    fire,
)


@pytest.fixture(autouse=True)
def _clean_state(monkeypatch):
    """Every test starts with no installed plan and no env plan."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    faultinject.uninstall()
    yield
    faultinject.uninstall()


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="site"):
            FaultSpec(site="nowhere")
        with pytest.raises(ConfigurationError, match="kind"):
            FaultSpec(kind="explode")
        with pytest.raises(ConfigurationError, match="probability"):
            FaultSpec(probability=1.5)
        with pytest.raises(ConfigurationError, match="seconds"):
            FaultSpec(kind="hang", seconds=-1)

    def test_matches_site_index_attempt(self):
        fault = FaultSpec(site="point", index=2, attempts=(1,))
        assert fault.matches("point", index=2, attempt=1)
        assert not fault.matches("point", index=2, attempt=2)  # retried -> clean
        assert not fault.matches("point", index=1, attempt=1)
        assert not fault.matches("store-save", index=2, attempt=1)

    def test_wildcards(self):
        fault = FaultSpec(site="point")
        assert fault.matches("point", index=0, attempt=1)
        assert fault.matches("point", index=99, attempt=7)
        assert fault.matches("point")

    def test_probability_is_deterministic(self):
        fault = FaultSpec(probability=0.5, seed=42)
        decisions = [fault.matches("point", index=i, attempt=1) for i in range(64)]
        # Same coordinates, same verdicts — in this process and any other.
        assert decisions == [
            fault.matches("point", index=i, attempt=1) for i in range(64)
        ]
        # A 0.5 draw over 64 points hits both outcomes.
        assert any(decisions) and not all(decisions)
        # A different seed gives a different (but equally stable) pattern.
        other = FaultSpec(probability=0.5, seed=43)
        assert decisions != [
            other.matches("point", index=i, attempt=1) for i in range(64)
        ]

    def test_round_trip_and_unknown_field(self):
        fault = FaultSpec(kind="hang", index=3, attempts=(1, 2), seconds=0.5)
        assert FaultSpec.from_dict(fault.as_dict()) == fault
        with pytest.raises(ConfigurationError, match="unknown FaultSpec field"):
            FaultSpec.from_dict({"site": "point", "when": "now"})


class TestFaultPlan:
    def test_parse_forms(self):
        as_dict = {"site": "point", "kind": "raise", "index": 1}
        for payload in (
            as_dict,
            [as_dict],
            json.dumps(as_dict),
            json.dumps([as_dict]),
        ):
            plan = FaultPlan.parse(payload)
            assert len(plan.faults) == 1
            assert plan.faults[0].index == 1
        assert FaultPlan.parse(plan) is plan

    def test_parse_rejects_garbage(self):
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            FaultPlan.parse("{nope")
        with pytest.raises(ConfigurationError, match="fault dict"):
            FaultPlan.parse(json.dumps("a string"))
        with pytest.raises(ConfigurationError):
            FaultPlan.parse([42])

    def test_as_json_round_trip(self):
        plan = FaultPlan(faults=({"site": "point", "kind": "kill", "index": 0},))
        assert FaultPlan.parse(plan.as_json()) == plan

    def test_matching_filters(self):
        plan = FaultPlan(
            faults=(
                {"site": "point", "index": 0},
                {"site": "point", "index": 1},
                {"site": "store-save", "kind": "corrupt"},
            )
        )
        assert len(plan.matching("point", index=0, attempt=1)) == 1
        assert len(plan.matching("store-save")) == 1
        assert plan.matching("point", index=5, attempt=1) == ()


class TestActivation:
    def test_no_plan_is_a_noop(self):
        fire("point", index=0, attempt=1)  # must not raise

    def test_injected_scopes_the_plan(self):
        with faultinject.injected([{"site": "point", "kind": "raise"}]):
            with pytest.raises(InjectedFault):
                fire("point", index=0, attempt=1)
        fire("point", index=0, attempt=1)  # uninstalled again

    def test_injected_restores_previous_plan(self):
        outer = faultinject.install([{"site": "point", "index": 7}])
        with faultinject.injected([{"site": "point", "index": 8}]):
            assert faultinject.active_plan().faults[0].index == 8
        assert faultinject.active_plan() is outer

    def test_env_plan_lazy_and_cached(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, json.dumps([{"site": "point", "index": 4}]))
        first = faultinject.active_plan()
        assert first.faults[0].index == 4
        assert faultinject.active_plan() is first  # same text -> cached parse
        monkeypatch.setenv(ENV_VAR, json.dumps([{"site": "point", "index": 5}]))
        assert faultinject.active_plan().faults[0].index == 5

    def test_installed_plan_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, json.dumps([{"site": "point", "index": 4}]))
        with faultinject.injected([{"site": "point", "index": 9}]):
            assert faultinject.active_plan().faults[0].index == 9

    def test_fire_interrupt_kind(self):
        with faultinject.injected([{"site": "point", "kind": "interrupt"}]):
            with pytest.raises(KeyboardInterrupt):
                fire("point", index=0, attempt=1)

    def test_fire_hang_kind_sleeps(self):
        import time

        with faultinject.injected(
            [{"site": "point", "kind": "hang", "seconds": 0.05}]
        ):
            t0 = time.perf_counter()
            fire("point", index=0, attempt=1)
            assert time.perf_counter() - t0 >= 0.05


class TestCorruptFile:
    def test_corrupts_only_with_matching_fault(self, tmp_path):
        path = tmp_path / "artifact.json"
        path.write_text(json.dumps({"ok": True}) * 20)
        original = path.read_bytes()
        assert corrupt_file(path) is False  # no plan -> untouched
        assert path.read_bytes() == original
        with faultinject.injected([{"site": "store-save", "kind": "corrupt"}]):
            assert corrupt_file(path) is True
        garbled = path.read_bytes()
        assert garbled != original
        with pytest.raises(json.JSONDecodeError):
            json.loads(garbled.decode("utf-8", errors="replace"))
