"""Property-based tests (hypothesis) for core invariants.

These cover the data structures and math the whole reproduction rests on:
reconstruction-error spectra, low-rank factorizations, crossbar tiling and
wire counting, area arithmetic, and the im2col/col2im adjoint pair.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.hardware import (
    CrossbarLibrary,
    TechnologyParameters,
    count_remaining_wires,
    dense_layer_area,
    factorized_layer_area,
    largest_divisor_at_most,
    layer_area_fraction,
    plan_tiling,
)
from repro.lowrank import (
    LowRankApproximator,
    minimal_rank,
    reconstruction_error_curve,
    svd_factorize,
)
from repro.nn import functional as F

# Keep hypothesis examples modest so the whole suite stays fast.
COMMON_SETTINGS = settings(max_examples=40, deadline=None)


spectra = arrays(
    dtype=np.float64,
    shape=st.integers(1, 30),
    elements=st.floats(0.0, 1e3, allow_nan=False, allow_infinity=False),
)


class TestSpectrumProperties:
    @COMMON_SETTINGS
    @given(spectrum=spectra)
    def test_error_curve_is_monotone_and_bounded(self, spectrum):
        curve = reconstruction_error_curve(spectrum)
        assert curve.shape == spectrum.shape
        assert np.all(curve >= -1e-12)
        assert np.all(curve <= 1.0 + 1e-12)
        assert np.all(np.diff(curve) <= 1e-12)  # non-increasing in K
        assert curve[-1] == pytest.approx(0.0, abs=1e-12)

    @COMMON_SETTINGS
    @given(spectrum=spectra, tolerance=st.floats(0.0, 1.0))
    def test_minimal_rank_satisfies_tolerance(self, spectrum, tolerance):
        rank = minimal_rank(spectrum, tolerance)
        curve = reconstruction_error_curve(spectrum)
        assert 1 <= rank <= spectrum.size
        assert curve[rank - 1] <= tolerance + 1e-9
        if rank > 1:
            # Minimality: one rank less would violate the tolerance.
            assert curve[rank - 2] > tolerance - 1e-12


matrices = st.tuples(st.integers(2, 12), st.integers(2, 12)).flatmap(
    lambda shape: arrays(
        dtype=np.float64,
        shape=shape,
        elements=st.floats(-5, 5, allow_nan=False, allow_infinity=False, width=32),
    )
)


class TestFactorizationProperties:
    @COMMON_SETTINGS
    @given(matrix=matrices)
    def test_full_rank_factorization_is_exact(self, matrix):
        # The PCA backend factorizes the covariance AᵀA, which squares the
        # condition number: attainable absolute accuracy in the small-
        # eigenvalue subspace is ~sqrt(eps)·‖A‖, not eps·‖A‖, so its
        # tolerance must scale with the matrix norm.
        scale = max(1.0, float(np.linalg.norm(matrix)))
        for method, atol in (("pca", 1e-7 * scale), ("svd", 1e-8)):
            factorization = LowRankApproximator(method).factorize(matrix)
            assert np.allclose(factorization.reconstruct(), matrix, atol=atol)

    @COMMON_SETTINGS
    @given(matrix=matrices, data=st.data())
    def test_truncation_error_matches_spectrum_tail(self, matrix, data):
        max_rank = min(matrix.shape)
        rank = data.draw(st.integers(1, max_rank))
        result = svd_factorize(matrix, rank)
        norm_sq = np.linalg.norm(matrix) ** 2
        if norm_sq < 1e-12:
            return
        actual = np.linalg.norm(matrix - result.reconstruct()) ** 2 / norm_sq
        expected = np.sum(result.singular_values[rank:] ** 2) / np.sum(
            result.singular_values**2
        )
        assert actual == pytest.approx(expected, abs=1e-8)

    @COMMON_SETTINGS
    @given(matrix=matrices, data=st.data())
    def test_error_decreases_with_rank(self, matrix, data):
        approximator = LowRankApproximator("svd")
        max_rank = min(matrix.shape)
        rank = data.draw(st.integers(1, max_rank - 1)) if max_rank > 1 else 1
        low = approximator.factorize(matrix, rank).relative_error(matrix)
        high = approximator.factorize(matrix, min(rank + 1, max_rank)).relative_error(matrix)
        assert high <= low + 1e-9


class TestDivisorAndTilingProperties:
    @COMMON_SETTINGS
    @given(value=st.integers(1, 5000), limit=st.integers(1, 128))
    def test_largest_divisor_properties(self, value, limit):
        divisor = largest_divisor_at_most(value, limit)
        assert 1 <= divisor <= min(value, limit)
        assert value % divisor == 0
        # No larger divisor below the limit exists.
        for candidate in range(divisor + 1, min(value, limit) + 1):
            assert value % candidate != 0

    @COMMON_SETTINGS
    @given(rows=st.integers(1, 600), cols=st.integers(1, 600), max_size=st.integers(2, 64))
    def test_tiling_covers_matrix_exactly(self, rows, cols, max_size):
        tech = TechnologyParameters(max_crossbar_rows=max_size, max_crossbar_cols=max_size)
        library = CrossbarLibrary(technology=tech)
        plan = plan_tiling(rows, cols, library=library)
        assert plan.tile_rows <= max_size or rows <= max_size
        assert plan.tile_cols <= max_size or cols <= max_size
        covered = np.zeros((rows, cols), dtype=int)
        total_wires = 0
        for _, _, row_slice, col_slice in plan.iter_tiles():
            covered[row_slice, col_slice] += 1
            total_wires += (row_slice.stop - row_slice.start) + (col_slice.stop - col_slice.start)
        assert np.all(covered == 1)
        assert total_wires == plan.dense_wire_count()
        assert plan.allocated_cells >= plan.total_cells

    @COMMON_SETTINGS
    @given(
        rows=st.integers(2, 80),
        cols=st.integers(2, 80),
        max_size=st.integers(2, 16),
        data=st.data(),
    )
    def test_wire_count_bounds_and_monotonicity(self, rows, cols, max_size, data):
        tech = TechnologyParameters(max_crossbar_rows=max_size, max_crossbar_cols=max_size)
        plan = plan_tiling(rows, cols, library=CrossbarLibrary(technology=tech))
        weights = data.draw(
            arrays(
                dtype=np.float64,
                shape=(rows, cols),
                elements=st.floats(-1, 1, allow_nan=False, width=32),
            )
        )
        remaining = count_remaining_wires(weights, plan)
        assert 0 <= remaining <= plan.dense_wire_count()
        # Zeroing more entries can never increase the wire count.
        sparser = weights.copy()
        sparser[:: max(1, rows // 3)] = 0.0
        assert count_remaining_wires(sparser, plan) <= remaining


class TestAreaProperties:
    @COMMON_SETTINGS
    @given(n=st.integers(1, 512), m=st.integers(1, 512), data=st.data())
    def test_area_fraction_bounds_and_eq2(self, n, m, data):
        rank = data.draw(st.integers(1, min(n, m)))
        fraction = layer_area_fraction(n, m, rank)
        assert fraction > 0
        assert factorized_layer_area(n, m, rank) == pytest.approx(
            fraction * dense_layer_area(n, m)
        )
        # Paper Eq. (2): the factorization saves area iff K < NM/(N+M).
        bound = n * m / (n + m)
        if rank < bound:
            assert fraction < 1.0
        elif rank > bound:
            assert fraction > 1.0


class TestIm2ColProperties:
    @COMMON_SETTINGS
    @given(
        batch=st.integers(1, 3),
        channels=st.integers(1, 3),
        size=st.integers(3, 9),
        kernel=st.integers(1, 3),
        stride=st.integers(1, 2),
        padding=st.integers(0, 2),
        data=st.data(),
    )
    def test_adjoint_property(self, batch, channels, size, kernel, stride, padding, data):
        if size + 2 * padding < kernel:
            return
        x = data.draw(
            arrays(
                dtype=np.float64,
                shape=(batch, channels, size, size),
                elements=st.floats(-2, 2, allow_nan=False, width=32),
            )
        )
        cols, _, _ = F.im2col(x, kernel, kernel, stride, padding)
        rng = np.random.default_rng(0)
        c = rng.normal(size=cols.shape)
        lhs = float(np.sum(cols * c))
        rhs = float(np.sum(x * F.col2im(c, x.shape, kernel, kernel, stride, padding)))
        assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-9)

    @COMMON_SETTINGS
    @given(
        logits=arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 6), st.integers(2, 8)),
            elements=st.floats(-50, 50, allow_nan=False),
        )
    )
    def test_softmax_is_distribution(self, logits):
        probs = F.softmax(logits, axis=1)
        assert np.all(probs >= 0)
        assert np.allclose(probs.sum(axis=1), 1.0)
