"""Tests for Parameter (masks, gradients) and weight initializers."""

import numpy as np
import pytest

from repro.nn.initializers import (
    Constant,
    HeNormal,
    Initializer,
    NormalInit,
    UniformInit,
    XavierUniform,
    Zeros,
    available_initializers,
    get_initializer,
)
from repro.nn.parameter import Parameter


class TestParameter:
    def test_grad_starts_at_zero(self):
        p = Parameter(np.ones((2, 3)))
        assert np.array_equal(p.grad, np.zeros((2, 3)))

    def test_accumulate_and_zero_grad(self):
        p = Parameter(np.zeros((2, 2)))
        p.accumulate_grad(np.ones((2, 2)))
        p.accumulate_grad(np.ones((2, 2)))
        assert np.array_equal(p.grad, 2 * np.ones((2, 2)))
        p.zero_grad()
        assert np.array_equal(p.grad, np.zeros((2, 2)))

    def test_accumulate_grad_shape_mismatch(self):
        p = Parameter(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            p.accumulate_grad(np.ones((3, 2)))

    def test_set_mask_zeroes_data(self):
        p = Parameter(np.ones((2, 2)))
        mask = np.array([[True, False], [False, True]])
        p.set_mask(mask)
        assert np.array_equal(p.data, np.array([[1.0, 0.0], [0.0, 1.0]]))

    def test_apply_mask_zeroes_grad_and_data(self):
        p = Parameter(np.ones((2, 2)))
        p.set_mask(np.array([[True, False], [True, True]]))
        p.data = np.full((2, 2), 5.0)
        p.grad = np.full((2, 2), 3.0)
        p.apply_mask()
        assert p.data[0, 1] == 0.0
        assert p.grad[0, 1] == 0.0
        assert p.data[0, 0] == 5.0

    def test_set_mask_shape_mismatch(self):
        p = Parameter(np.ones((2, 2)))
        with pytest.raises(ValueError):
            p.set_mask(np.ones((3, 3), dtype=bool))

    def test_clear_mask(self):
        p = Parameter(np.ones((2, 2)))
        p.set_mask(np.zeros((2, 2), dtype=bool))
        p.clear_mask()
        assert p.mask is None

    def test_density(self):
        p = Parameter(np.array([[1.0, 0.0], [0.0, 0.0]]))
        assert p.density() == pytest.approx(0.25)

    def test_copy_is_deep(self):
        p = Parameter(np.ones((2, 2)), name="w")
        p.set_mask(np.array([[True, True], [True, False]]))
        clone = p.copy()
        clone.data[0, 0] = 9.0
        clone.mask[0, 1] = False
        assert p.data[0, 0] == 1.0
        assert p.mask[0, 1]

    def test_shape_and_size(self):
        p = Parameter(np.zeros((3, 4)))
        assert p.shape == (3, 4)
        assert p.size == 12


class TestInitializers:
    def test_zeros_and_constant(self):
        assert np.all(Zeros()((3, 3), 3, 3, 0) == 0)
        assert np.all(Constant(2.5)((2, 2), 2, 2, 0) == 2.5)

    def test_normal_std(self):
        samples = NormalInit(std=0.5)((200, 200), 200, 200, 0)
        assert samples.std() == pytest.approx(0.5, rel=0.05)

    def test_uniform_limits(self):
        samples = UniformInit(limit=0.1)((100, 100), 100, 100, 0)
        assert samples.min() >= -0.1 and samples.max() <= 0.1

    def test_xavier_uniform_limit(self):
        fan_in, fan_out = 50, 30
        limit = np.sqrt(6.0 / (fan_in + fan_out))
        samples = XavierUniform()((500, 30), fan_in, fan_out, 0)
        assert np.abs(samples).max() <= limit + 1e-12

    def test_he_normal_variance(self):
        fan_in = 100
        samples = HeNormal()((400, 100), fan_in, 100, 0)
        assert samples.std() == pytest.approx(np.sqrt(2.0 / fan_in), rel=0.05)

    def test_determinism_with_seed(self):
        a = HeNormal()((4, 4), 4, 4, 99)
        b = HeNormal()((4, 4), 4, 4, 99)
        assert np.array_equal(a, b)

    def test_rejects_bad_fan(self):
        with pytest.raises(ValueError):
            HeNormal()((2, 2), 0, 2, 0)

    def test_get_initializer_by_name(self):
        assert isinstance(get_initializer("he_normal"), HeNormal)
        assert isinstance(get_initializer("glorot_uniform"), XavierUniform)

    def test_get_initializer_passthrough_and_errors(self):
        init = HeNormal()
        assert get_initializer(init) is init
        with pytest.raises(ValueError):
            get_initializer("unknown_init")
        with pytest.raises(TypeError):
            get_initializer(42)

    def test_registry_listing(self):
        names = available_initializers()
        assert "he_normal" in names and "xavier_uniform" in names
        for name in names:
            assert isinstance(get_initializer(name), Initializer)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            NormalInit(std=0.0)
        with pytest.raises(ValueError):
            UniformInit(limit=-1.0)
