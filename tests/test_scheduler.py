"""Tests for the orchestration service (``repro.scheduler``).

Acceptance contract (PR 9): two concurrently submitted specs provably
interleave independent stages; a node failure in one job is isolated,
retried per ``RetryPolicy``, and journaled without affecting the other;
the queue survives cancellation and daemon crashes (``recover`` requeues,
journaled progress resumes).
"""

import json
import os
import threading

import pytest

from repro.exceptions import SchedulerError
from repro.experiments import ExperimentSpec, RunStore, execute_spec
from repro.scheduler import JobQueue, JobScheduler
from repro.scheduler.client import job_rows, render_event, render_job_rows, watch_events
from repro.scheduler.daemon import default_queue_root, serve_jobs
from repro.utils import faultinject

FAST = dict(
    train_samples=120,
    test_samples=48,
    baseline_iterations=30,
    clip_iterations=20,
    clip_interval=10,
    deletion_iterations=20,
    finetune_iterations=10,
    record_interval=10,
    eval_interval=20,
    batch_size=24,
)


def sweep_spec(**overrides) -> ExperimentSpec:
    spec = ExperimentSpec(
        kind="sweep",
        method="rank_clipping",
        workload="mlp",
        scale="tiny",
        scale_overrides=FAST,
        grid=(0.05, 0.3),
        name="sched-sweep",
    )
    return spec.with_updates(**overrides) if overrides else spec


@pytest.fixture
def queue(tmp_path):
    return JobQueue(tmp_path / "queue")


@pytest.fixture
def store(tmp_path):
    return RunStore(tmp_path / "runs")


@pytest.fixture(autouse=True)
def _no_leaked_faults():
    faultinject.uninstall()
    os.environ.pop(faultinject.ENV_VAR, None)
    yield
    faultinject.uninstall()
    os.environ.pop(faultinject.ENV_VAR, None)


class TestJobQueue:
    def test_submit_assigns_sequential_deterministic_ids(self, queue):
        first = queue.submit(sweep_spec())
        second = queue.submit(sweep_spec(seed=7))
        assert first.job_id == f"job-00001-{sweep_spec().fingerprint()}"
        assert second.seq == 2
        assert queue.state(first.job_id)["state"] == "queued"

    def test_jobs_order_by_priority_then_fifo(self, queue):
        low = queue.submit(sweep_spec(), priority=0)
        high = queue.submit(sweep_spec(seed=7), priority=5)
        mid = queue.submit(sweep_spec(seed=8), priority=1)
        assert [job.job_id for job in queue.jobs()] == [
            high.job_id,
            mid.job_id,
            low.job_id,
        ]

    def test_load_by_unique_prefix_and_errors(self, queue):
        job = queue.submit(sweep_spec())
        queue.submit(sweep_spec(seed=7))
        assert queue.load("job-00001").job_id == job.job_id
        with pytest.raises(SchedulerError):
            queue.load("job-0000")  # ambiguous
        with pytest.raises(SchedulerError):
            queue.load("job-99999")  # unknown

    def test_spec_round_trips_through_the_queue(self, queue):
        spec = sweep_spec(seed=3)
        job = queue.submit(spec)
        assert queue.load(job.job_id).spec() == spec

    def test_cancel_request_flags_until_terminal(self, queue):
        job = queue.submit(sweep_spec())
        assert queue.request_cancel(job.job_id) is True
        assert queue.cancel_requested(job.job_id) is True
        queue.write_state(job.job_id, state="done")
        assert queue.request_cancel(job.job_id) is False

    def test_recover_requeues_running_jobs(self, queue):
        job = queue.submit(sweep_spec())
        queue.write_state(job.job_id, state="running")
        other = queue.submit(sweep_spec(seed=7))
        queue.write_state(other.job_id, state="done")
        assert queue.recover() == [job.job_id]
        assert queue.state(job.job_id)["state"] == "queued"
        assert queue.state(other.job_id)["state"] == "done"

    def test_events_are_checksummed_and_ordered(self, queue):
        job = queue.submit(sweep_spec())
        queue.append_event(job.job_id, "node-start", node="baseline", label="b")
        events = queue.events()
        assert [e["event"] for e in events] == ["job-queued", "node-start"]
        assert events[0]["seq"] < events[1]["seq"]
        # A torn trailing line is skipped, not fatal.
        with open(queue.events_path(), "a", encoding="utf-8") as handle:
            handle.write('{"seq": 99, "job": "x", "ev')
        assert [e["event"] for e in queue.events()] == ["job-queued", "node-start"]

    def test_events_filter_by_job_and_seq(self, queue):
        a = queue.submit(sweep_spec())
        b = queue.submit(sweep_spec(seed=7))
        assert {e["job"] for e in queue.events()} == {a.job_id, b.job_id}
        only_b = queue.events(job_id=b.job_id)
        assert all(e["job"] == b.job_id for e in only_b)
        last = queue.events()[-1]["seq"]
        assert queue.events(after_seq=last) == []


class TestScheduler:
    def test_two_jobs_interleave_and_both_complete(self, queue, store):
        a = queue.submit(sweep_spec(name="job-a"))
        b = queue.submit(sweep_spec(seed=7, name="job-b"))
        scheduler = JobScheduler(queue, store, workers=2, poll_s=0.05)
        assert scheduler.run(drain=True) == 2
        assert queue.state(a.job_id)["state"] == "done"
        assert queue.state(b.job_id)["state"] == "done"
        # Interleaving proof: the node-event stream switches between the
        # two jobs mid-run rather than running them back to back.
        node_events = [
            e["job"] for e in queue.events() if e["event"].startswith("node-")
        ]
        switches = sum(1 for x, y in zip(node_events, node_events[1:]) if x != y)
        assert switches >= 2, node_events
        # Both artifacts are complete in the shared store.
        assert store.load(sweep_spec().fingerprint())["complete"] is True
        assert store.load(sweep_spec(seed=7).fingerprint())["complete"] is True

    def test_scheduled_run_is_bit_identical_to_execute_spec(
        self, queue, store, tmp_path
    ):
        spec = sweep_spec()
        queue.submit(spec)
        JobScheduler(queue, store, workers=2, poll_s=0.05).run(drain=True)
        reference_store = RunStore(tmp_path / "reference")
        execute_spec(spec, store=reference_store)
        scheduled = store.load(spec.fingerprint())
        reference = reference_store.load(spec.fingerprint())
        assert json.dumps(scheduled["result"], sort_keys=True) == json.dumps(
            reference["result"], sort_keys=True
        )
        points_a = {fp: e["payload"] for fp, e in scheduled["points"].items()}
        points_b = {fp: e["payload"] for fp, e in reference["points"].items()}
        assert json.dumps(points_a, sort_keys=True) == json.dumps(
            points_b, sort_keys=True
        )

    def test_failure_in_one_job_does_not_affect_the_other(self, queue, store):
        bad = queue.submit(sweep_spec(name="bad"))
        good = queue.submit(sweep_spec(seed=7, name="good"))
        plan = [{"site": "point", "kind": "raise", "index": 0}]
        with faultinject.injected(plan):
            # Both jobs see the fault plan, but index 0 of each job retries
            # independently; seed=7's points differ only in seed, so both
            # jobs lose point 0 — the isolation claim is that each still
            # completes partial with its OTHER point intact.
            JobScheduler(queue, store, workers=2, poll_s=0.05).run(drain=True)
        for job, spec in ((bad, sweep_spec()), (good, sweep_spec(seed=7))):
            assert queue.state(job.job_id)["state"] == "partial"
            artifact = store.load(spec.fingerprint())
            assert artifact["complete"] is False
            assert len(artifact["failures"]) == 1
        # Healing run (no faults): only the failed points recompute.
        heal = queue.submit(sweep_spec(name="heal"))
        JobScheduler(queue, store, workers=2, poll_s=0.05).run(drain=True)
        assert queue.state(heal.job_id)["state"] == "done"
        detail = queue.state(heal.job_id)["detail"]
        assert "1 computed, 1 reused" in detail

    def test_retry_policy_applies_inside_a_node(self, queue, store):
        job = queue.submit(sweep_spec(retry={"max_attempts": 2}))
        plan = [{"site": "point", "kind": "raise", "index": 0, "attempts": [1]}]
        with faultinject.injected(plan):
            JobScheduler(queue, store, workers=1, poll_s=0.05).run(drain=True)
        assert queue.state(job.job_id)["state"] == "done"

    def test_cancel_while_queued(self, queue, store):
        job = queue.submit(sweep_spec())
        queue.request_cancel(job.job_id)
        JobScheduler(queue, store, workers=1, poll_s=0.05).run(drain=True)
        assert queue.state(job.job_id)["state"] == "cancelled"
        assert store.load(sweep_spec().fingerprint()) is None

    def test_graceful_stop_requeues_active_jobs(self, queue, store):
        job = queue.submit(sweep_spec())
        stop = threading.Event()
        scheduler = JobScheduler(queue, store, workers=1, poll_s=0.05)

        events_seen = threading.Event()

        def watcher():
            # Stop as soon as the first node starts: the job must go back
            # to queued with its progress journaled.
            deadline = 30.0
            import time as _time

            start = _time.monotonic()
            while _time.monotonic() - start < deadline:
                if any(e["event"] == "node-start" for e in queue.events()):
                    events_seen.set()
                    stop.set()
                    return
                _time.sleep(0.02)
            stop.set()

        thread = threading.Thread(target=watcher)
        thread.start()
        scheduler.run(stop)
        thread.join(timeout=30)
        assert events_seen.is_set()
        assert queue.state(job.job_id)["state"] == "queued"
        # The next scheduler finishes the job.
        JobScheduler(queue, store, workers=1, poll_s=0.05).run(drain=True)
        assert queue.state(job.job_id)["state"] == "done"

    def test_priorities_pick_admission_order(self, queue, store):
        low = queue.submit(sweep_spec(name="low"), priority=0)
        high = queue.submit(sweep_spec(seed=7, name="high"), priority=9)
        JobScheduler(queue, store, workers=1, poll_s=0.05).run(drain=True)
        started = [
            e["job"] for e in queue.events() if e["event"] == "job-started"
        ]
        assert started == [high.job_id, low.job_id]


class TestDaemon:
    def test_serve_jobs_drain_recovers_crashed_state(self, tmp_path):
        store_root = tmp_path / "runs"
        queue = JobQueue(default_queue_root(store_root))
        job = queue.submit(sweep_spec())
        # Simulate a daemon killed mid-run: state stuck at "running".
        queue.write_state(job.job_id, state="running")
        finalized = serve_jobs(store_root, workers=1, poll_s=0.05, drain=True)
        assert finalized == 1
        assert queue.state(job.job_id)["state"] == "done"
        assert any(e["event"] == "job-requeued" for e in queue.events())

    def test_serve_jobs_idle_exit(self, tmp_path):
        assert serve_jobs(tmp_path / "runs", workers=1, poll_s=0.02, idle_exit_s=0.1) == 0


class TestClient:
    def test_job_rows_join_queue_and_store(self, queue, store):
        job = queue.submit(sweep_spec())
        JobScheduler(queue, store, workers=1, poll_s=0.05).run(drain=True)
        rows = job_rows(queue, store)
        assert len(rows) == 1
        row = rows[0]
        assert row["job_id"] == job.job_id
        assert row["state"] == "done"
        assert row["nodes_finished"] == row["nodes_total"] == 4
        assert row["artifact"]["complete"] is True
        text = render_job_rows(rows)
        assert job.job_id in text and "artifact=complete" in text

    def test_watch_events_stops_at_terminal(self, queue, store):
        job = queue.submit(sweep_spec())
        JobScheduler(queue, store, workers=1, poll_s=0.05).run(drain=True)
        seen = list(watch_events(queue, job_id=job.job_id, timeout_s=5.0))
        assert seen[0]["event"] == "job-queued"
        assert seen[-1]["event"] == "job-done"
        assert any(e["event"] == "node-done" for e in seen)
        line = render_event(seen[-1])
        assert job.job_id in line and "job-done" in line

    def test_render_rows_empty(self):
        assert "no jobs" in render_job_rows([])
