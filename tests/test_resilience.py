"""Chaos tests for the fault-tolerance layer (``repro.experiments.resilience``).

Acceptance contract (PR 7): a sweep survives point crashes, worker deaths,
hangs and interrupts; everything it completes is persisted; resuming after
any of those recomputes **only** what was lost; and every recovered result is
bit-identical to a clean run — retries, pool rebuilds and journal replays
must be invisible in the numbers.
"""

import copy
import os

import pytest

from repro.exceptions import (
    ConfigurationError,
    PointFailureError,
    RunInterrupted,
)
from repro.experiments import ExperimentSpec, RunStore, execute_spec
from repro.experiments.resilience import PointFailure, RetryPolicy, RunMonitor
from repro.experiments.store import compare_artifacts, render_artifact
from repro.utils import faultinject
from repro.utils.faultinject import InjectedFault

FAST = dict(
    train_samples=120,
    test_samples=48,
    baseline_iterations=30,
    clip_iterations=20,
    clip_interval=10,
    deletion_iterations=20,
    finetune_iterations=10,
    record_interval=10,
    eval_interval=20,
    batch_size=24,
)


def sweep_spec(**overrides) -> ExperimentSpec:
    spec = ExperimentSpec(
        kind="sweep",
        method="rank_clipping",
        workload="mlp",
        scale="tiny",
        scale_overrides=FAST,
        grid=(0.05, 0.3),
        name="chaos-sweep",
    )
    return spec.with_updates(**overrides) if overrides else spec


def points_of(run):
    return [(point.tolerance, point.accuracy, point.ranks) for point in run.result.points]


@pytest.fixture
def store(tmp_path):
    return RunStore(tmp_path / "runs")


@pytest.fixture(autouse=True)
def _no_leaked_faults():
    faultinject.uninstall()
    os.environ.pop(faultinject.ENV_VAR, None)
    yield
    faultinject.uninstall()
    os.environ.pop(faultinject.ENV_VAR, None)


@pytest.fixture(scope="module")
def clean_reference():
    """One storeless clean run; the bit-identity baseline for every test."""
    run = execute_spec(sweep_spec())
    return [(p.tolerance, p.accuracy, p.ranks) for p in run.result.points]


class TestRetryPolicy:
    def test_defaults_do_not_retry(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 1
        assert not policy.wants_retry(ValueError("x"), failed_attempts=1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_s=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout_s=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(pool_rebuilds=-1)

    def test_retry_on_matches_base_classes(self):
        policy = RetryPolicy(max_attempts=2, retry_on=("RuntimeError",))
        assert policy.matches(InjectedFault("boom"))  # subclass of RuntimeError
        assert not policy.matches(ValueError("nope"))
        assert policy.wants_retry(InjectedFault("boom"), failed_attempts=1)
        assert not policy.wants_retry(InjectedFault("boom"), failed_attempts=2)

    def test_backoff_doubles(self):
        policy = RetryPolicy(max_attempts=4, backoff_s=0.1)
        assert policy.backoff_for(1) == pytest.approx(0.1)
        assert policy.backoff_for(2) == pytest.approx(0.2)
        assert policy.backoff_for(3) == pytest.approx(0.4)

    def test_round_trip_and_unknown_field(self):
        policy = RetryPolicy(max_attempts=3, timeout_s=5.0)
        assert RetryPolicy.from_dict(policy.as_dict()) == policy
        with pytest.raises(ConfigurationError, match="unknown RetryPolicy"):
            RetryPolicy.from_dict({"max_attempts": 2, "jitter": True})

    def test_policy_is_fingerprint_neutral(self):
        base = sweep_spec()
        tweaked = sweep_spec(retry={"max_attempts": 5, "timeout_s": 60.0})
        assert base.fingerprint() == tweaked.fingerprint()


class TestPointFailure:
    def test_from_exception_and_payload_round_trip(self):
        try:
            raise ValueError("the point exploded")
        except ValueError as error:
            failure = PointFailure.from_exception(
                index=3, label="tolerance=0.3", error=error, attempts=2, elapsed_s=1.5
            )
        assert failure.error_type == "ValueError"
        assert "the point exploded" in failure.traceback
        clone = PointFailure.from_payload(failure.to_payload())
        assert clone.index == 3 and clone.attempts == 2
        # Unknown payload keys (artifacts from a newer version) are ignored.
        payload = dict(failure.to_payload(), future_field=1)
        assert PointFailure.from_payload(payload).message == failure.message


class TestPointIsolation:
    def test_partial_run_persists_and_reports(self, store, clean_reference):
        with faultinject.injected([{"site": "point", "kind": "raise", "index": 1}]):
            run = execute_spec(sweep_spec(), store=store)
        assert run.computed_points == 1
        assert len(run.failures) == 1
        failure = run.failures[0]
        assert failure.error_type == "InjectedFault"
        assert "tolerance=0.3" in failure.label
        assert "FAILED" in run.format_summary()
        # The surviving point is bit-identical to the clean run.
        assert points_of(run) == clean_reference[:1]
        artifact = store.load(run.fingerprint)
        assert artifact["complete"] is False
        assert len(artifact["failures"]) == 1
        (record,) = artifact["failures"].values()
        assert record["error_type"] == "InjectedFault"
        assert "InjectedFault" in record["traceback"]
        rendered = render_artifact(artifact)
        assert "failed points: 1" in rendered
        assert "InjectedFault" in rendered
        other = store.load(run.fingerprint)
        assert "failed points" in compare_artifacts(artifact, other)

    def test_resume_retries_only_the_failed_point(self, store, clean_reference):
        with faultinject.injected([{"site": "point", "kind": "raise", "index": 1}]):
            execute_spec(sweep_spec(), store=store)
        healed = execute_spec(sweep_spec(), store=store)
        assert healed.computed_points == 1
        assert healed.reused_points == 1
        assert not healed.failures
        assert points_of(healed) == clean_reference
        artifact = store.load(healed.fingerprint)
        assert artifact["complete"] is True
        assert "failures" not in artifact

    def test_strict_mode_aborts_on_first_failure(self, store):
        with faultinject.injected([{"site": "point", "kind": "raise", "index": 0}]):
            with pytest.raises(PointFailureError, match="strict"):
                execute_spec(sweep_spec(), store=store, strict=True)

    def test_every_point_failing_aborts_even_without_strict(self):
        with faultinject.injected([{"site": "point", "kind": "raise"}]):
            with pytest.raises(PointFailureError, match="every sweep point failed"):
                execute_spec(sweep_spec())


class TestRetry:
    def test_transient_fault_is_retried_bit_identically(self, clean_reference):
        plan = [{"site": "point", "kind": "raise", "index": 1, "attempts": [1]}]
        with faultinject.injected(plan):
            run = execute_spec(sweep_spec(retry={"max_attempts": 2}))
        assert not run.failures
        assert points_of(run) == clean_reference

    def test_retry_on_filters_exception_types(self):
        policy = {"max_attempts": 3, "retry_on": ["ValueError"]}
        plan = [{"site": "point", "kind": "raise", "index": 1}]
        with faultinject.injected(plan):
            run = execute_spec(sweep_spec(retry=policy))
        # InjectedFault is a RuntimeError: not retryable under this policy.
        assert run.failures[0].attempts == 1

    def test_exhausted_retries_record_the_attempt_count(self):
        plan = [{"site": "point", "kind": "raise", "index": 1}]  # every attempt
        with faultinject.injected(plan):
            run = execute_spec(sweep_spec(retry={"max_attempts": 3}))
        assert run.failures[0].attempts == 3


class TestPoolSupervision:
    def test_worker_kill_rebuilds_pool_and_completes(self, clean_reference):
        plan = [{"site": "point", "kind": "kill", "index": 0, "attempts": [1]}]
        with faultinject.injected(plan):
            run = execute_spec(sweep_spec(workers=2))
        assert not run.failures
        assert run.computed_points == 2
        assert points_of(run) == clean_reference

    def test_persistent_killer_fails_one_point_not_the_run(self, clean_reference):
        plan = [{"site": "point", "kind": "kill", "index": 0}]  # every attempt
        with faultinject.injected(plan):
            run = execute_spec(sweep_spec(workers=2))
        assert len(run.failures) == 1
        assert run.failures[0].index == 0
        assert points_of(run) == clean_reference[1:]

    def test_environmental_breakage_degrades_to_serial(self, caplog, clean_reference):
        """Two *different* solo points breaking pools means the environment
        is at fault: the run finishes under serial supervision in-parent."""
        plan = [
            {"site": "point", "kind": "kill", "index": 0, "attempts": [1, 2]},
            {"site": "point", "kind": "kill", "index": 1, "attempts": [1, 2]},
        ]
        with faultinject.injected(plan):
            run = execute_spec(sweep_spec(workers=2))
        assert not run.failures
        assert points_of(run) == clean_reference
        assert "serial" in " ".join(record.message for record in caplog.records)

    def test_hung_point_times_out(self, clean_reference):
        plan = [{"site": "point", "kind": "hang", "index": 0, "seconds": 30}]
        spec = sweep_spec(workers=2, retry={"timeout_s": 2.0})
        with faultinject.injected(plan):
            run = execute_spec(spec)
        assert [f.error_type for f in run.failures] == ["PointTimeoutError"]
        assert points_of(run) == clean_reference[1:]

    def test_pool_failure_parity_with_serial(self, store, tmp_path):
        """A pool run's partial artifact equals the serial run's."""
        plan = [{"site": "point", "kind": "raise", "index": 1}]
        with faultinject.injected(plan):
            serial = execute_spec(sweep_spec(), store=store)
        pool_store = RunStore(tmp_path / "pool-runs")
        with faultinject.injected(plan):
            pool = execute_spec(sweep_spec(workers=2), store=pool_store)
        assert points_of(serial) == points_of(pool)
        assert [f.index for f in serial.failures] == [f.index for f in pool.failures]


class TestJournalAndInterrupt:
    def test_interrupt_drains_and_persists_partial(self, store, clean_reference):
        plan = [{"site": "point", "kind": "interrupt", "index": 1}]
        with faultinject.injected(plan):
            with pytest.raises(RunInterrupted, match="partial artifact"):
                execute_spec(sweep_spec(), store=store)
        spec = sweep_spec()
        artifact = store.load(spec.fingerprint())
        assert artifact is not None and artifact["complete"] is False
        assert len(artifact["points"]) == 1

    def test_journal_resume_is_bit_identical(self, store, clean_reference):
        plan = [{"site": "point", "kind": "interrupt", "index": 1}]
        with faultinject.injected(plan):
            with pytest.raises(RunInterrupted):
                execute_spec(sweep_spec(), store=store)
        resumed = execute_spec(sweep_spec(), store=store)
        assert resumed.computed_points == 1
        assert resumed.reused_points == 1
        assert points_of(resumed) == clean_reference
        # The journal is consumed once the artifact is complete.
        assert store.load_journal(sweep_spec().fingerprint()) == {}

    def test_journal_survives_a_hard_crash(self, store, clean_reference):
        """Simulate a crash *after* point 0 journaled: drop the artifact
        write entirely and keep only the journal, then resume from it."""
        spec = sweep_spec()
        with faultinject.injected([{"site": "point", "kind": "interrupt", "index": 1}]):
            with pytest.raises(RunInterrupted):
                execute_spec(spec, store=store)
        # A real SIGKILL never reaches the artifact-merge step; emulate that
        # by deleting the partial artifact and leaving the journal behind.
        assert store.delete(spec.fingerprint()) is True
        assert len(store.load_journal(spec.fingerprint())) == 1
        resumed = execute_spec(spec, store=store)
        assert resumed.computed_points == 1
        assert resumed.reused_points == 1
        assert points_of(resumed) == clean_reference

    def test_interrupt_without_store_reports_discarded(self):
        plan = [{"site": "point", "kind": "interrupt", "index": 1}]
        with faultinject.injected(plan):
            with pytest.raises(RunInterrupted, match="discarded"):
                execute_spec(sweep_spec())


class TestMonitorUnit:
    def test_strict_monitor_raises_on_record(self):
        monitor = RunMonitor(strict=True)
        failure = PointFailure(index=0, label="p0", error_type="ValueError", message="x")
        with pytest.raises(PointFailureError):
            monitor.record_failure(0, failure)

    def test_ordered_failures_sorted_by_slot(self):
        monitor = RunMonitor()
        f2 = PointFailure(index=2, label="p2", error_type="E", message="m")
        f0 = PointFailure(index=0, label="p0", error_type="E", message="m")
        monitor.record_failure(2, f2)
        monitor.record_failure(0, f0)
        assert [f.index for f in monitor.ordered_failures()] == [0, 2]

    def test_on_success_hook_sees_each_outcome(self):
        seen = {}
        monitor = RunMonitor(on_success=lambda slot, outcome: seen.update({slot: outcome}))
        monitor.record_success(1, "result")
        assert seen == {1: "result"}


class TestGroupDeletionParity:
    """The λ-sweep path threads the routing cache through supervision."""

    def test_group_deletion_partial_and_resume(self, store):
        spec = sweep_spec(method="group_deletion", grid=(1e-4, 1e-3))
        reference = execute_spec(spec)
        ref_points = [(p.strength, p.accuracy) for p in reference.result.points]
        with faultinject.injected([{"site": "point", "kind": "raise", "index": 0}]):
            partial = execute_spec(spec, store=store)
        assert len(partial.failures) == 1
        healed = execute_spec(spec, store=store)
        assert healed.computed_points == 1 and healed.reused_points == 1
        assert [(p.strength, p.accuracy) for p in healed.result.points] == ref_points
