"""Tests for Sequential, regularizers and the Trainer loop."""

import numpy as np
import pytest

from repro.data import ArrayDataset, DataLoader
from repro.exceptions import LayerError, TrainingError
from repro.models import build_mlp
from repro.nn import (
    SGD,
    Callback,
    GroupLassoRegularizer,
    L2Regularizer,
    Linear,
    ReLU,
    Sequential,
    SoftmaxCrossEntropy,
    Trainer,
    WeightGroup,
    accuracy,
)


class TestSequential:
    def test_add_and_lookup(self):
        net = Sequential([Linear(4, 3, name="fc1", rng=0), ReLU(name="relu1")])
        assert len(net) == 2
        assert net.get_layer("fc1").name == "fc1"
        assert net.layer_index("relu1") == 1
        with pytest.raises(LayerError):
            net.get_layer("missing")

    def test_duplicate_names_rejected(self):
        net = Sequential([Linear(4, 3, name="fc1", rng=0)])
        with pytest.raises(LayerError):
            net.add(Linear(3, 2, name="fc1", rng=0))

    def test_replace_layer(self):
        net = Sequential([Linear(4, 3, name="fc1", rng=0)])
        net.replace_layer("fc1", Linear(4, 3, name="fc1b", rng=1))
        assert net[0].name == "fc1b"

    def test_layers_of_type(self):
        net = build_mlp(8, [6], 3, rng=0)
        assert len(net.layers_of_type(Linear)) == 2
        assert len(net.layers_of_type(ReLU)) == 1

    def test_forward_backward_shapes(self):
        net = build_mlp(8, [6], 3, rng=0)
        x = np.random.default_rng(0).normal(size=(5, 8))
        out = net.forward(x)
        assert out.shape == (5, 3)
        grad_in = net.backward(np.ones_like(out))
        assert grad_in.shape == x.shape

    def test_whole_network_gradient_check(self, grad_checker):
        net = build_mlp(6, [5], 3, rng=2)
        rng = np.random.default_rng(3)
        x = rng.normal(size=(4, 6))
        targets = rng.integers(0, 3, size=4)
        loss = SoftmaxCrossEntropy()

        def value():
            return loss.forward(net.forward(x), targets)

        loss.forward(net.forward(x), targets)
        net.zero_grad()
        net.backward(loss.backward())
        for name, param in net.named_parameters():
            numeric = grad_checker(value, param.data)
            assert np.allclose(param.grad, numeric, atol=1e-6), name

    def test_predict_batches_match_full(self):
        net = build_mlp(8, [6], 3, rng=0)
        x = np.random.default_rng(1).normal(size=(10, 8))
        assert np.allclose(net.predict(x), net.predict(x, batch_size=3))

    def test_predict_classes(self):
        net = build_mlp(8, [6], 3, rng=0)
        x = np.random.default_rng(1).normal(size=(10, 8))
        classes = net.predict_classes(x)
        assert classes.shape == (10,)
        assert set(np.unique(classes)).issubset({0, 1, 2})

    def test_state_dict_roundtrip(self):
        net = build_mlp(8, [6], 3, rng=0)
        state = net.state_dict()
        net2 = build_mlp(8, [6], 3, rng=99)
        net2.load_state_dict(state)
        x = np.random.default_rng(2).normal(size=(4, 8))
        assert np.allclose(net.forward(x), net2.forward(x))

    def test_load_state_dict_strictness(self):
        net = build_mlp(8, [6], 3, rng=0)
        state = net.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(LayerError):
            net.load_state_dict(state)
        net.load_state_dict(state, strict=False)

    def test_load_state_dict_shape_mismatch(self):
        net = build_mlp(8, [6], 3, rng=0)
        state = net.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((1, 1))
        with pytest.raises(LayerError):
            net.load_state_dict(state, strict=False)

    def test_output_shape_and_summary(self):
        net = build_mlp(8, [6], 3, rng=0)
        assert net.output_shape((8,)) == (3,)
        summary = net.summary((8,))
        assert "total parameters" in summary
        assert str(net.num_parameters()) in summary

    def test_train_eval_propagate(self):
        net = build_mlp(8, [6], 3, rng=0)
        net.train()
        assert all(layer.training for layer in net)
        net.eval()
        assert not any(layer.training for layer in net)


class TestRegularizers:
    def test_l2_penalty_and_gradient(self):
        net = build_mlp(4, [3], 2, rng=0)
        reg = L2Regularizer(net.parameters(), strength=0.1)
        expected = 0.05 * sum(float(np.sum(p.data**2)) for p in net.parameters())
        assert reg.penalty() == pytest.approx(expected)
        net.zero_grad()
        reg.apply_gradients()
        for param in net.parameters():
            assert np.allclose(param.grad, 0.1 * param.data)

    def test_group_lasso_penalty(self):
        from repro.nn.parameter import Parameter

        param = Parameter(np.array([[3.0, 4.0], [0.0, 0.0]]))
        groups = [
            WeightGroup(param, (0, slice(None)), "row0", "row"),
            WeightGroup(param, (1, slice(None)), "row1", "row"),
        ]
        reg = GroupLassoRegularizer(groups, strength=2.0)
        assert reg.penalty() == pytest.approx(2.0 * 5.0)
        param.zero_grad()
        reg.apply_gradients()
        assert np.allclose(param.grad[0], 2.0 * np.array([3.0, 4.0]) / 5.0)
        # All-zero group must not produce NaNs.
        assert np.all(np.isfinite(param.grad[1]))

    def test_group_lasso_gradient_matches_numerical(self, grad_checker):
        from repro.nn.parameter import Parameter

        rng = np.random.default_rng(0)
        param = Parameter(rng.normal(size=(4, 6)))
        groups = [WeightGroup(param, (i, slice(None)), f"row{i}", "row") for i in range(4)]
        reg = GroupLassoRegularizer(groups, strength=0.3)

        def penalty():
            return reg.penalty()

        param.zero_grad()
        reg.apply_gradients()
        assert np.allclose(param.grad, grad_checker(penalty, param.data), atol=1e-6)

    def test_zero_groups_listing(self):
        from repro.nn.parameter import Parameter

        param = Parameter(np.array([[1.0, 1.0], [1e-9, 0.0]]))
        groups = [
            WeightGroup(param, (0, slice(None)), "row0", "row"),
            WeightGroup(param, (1, slice(None)), "row1", "row"),
        ]
        reg = GroupLassoRegularizer(groups, strength=1.0)
        zeros = reg.zero_groups(threshold=1e-6)
        assert [g.label for g in zeros] == ["row1"]
        assert len(reg.group_norms()) == 2


class RecordingCallback(Callback):
    def __init__(self):
        self.begin_calls = 0
        self.end_calls = 0
        self.iterations = []

    def on_train_begin(self, trainer):
        self.begin_calls += 1

    def on_iteration_end(self, trainer, iteration):
        self.iterations.append(iteration)

    def on_train_end(self, trainer):
        self.end_calls += 1


class TestTrainer:
    def test_training_reaches_high_accuracy(self, blob_data, mlp_trainer_factory, small_mlp):
        trainer = mlp_trainer_factory(small_mlp)
        trainer.run(150)
        assert trainer.evaluate() > 0.9

    def test_history_records_every_iteration(self, mlp_trainer_factory, small_mlp):
        trainer = mlp_trainer_factory(small_mlp)
        trainer.run(30)
        assert trainer.history.iterations == list(range(1, 31))
        assert len(trainer.history.loss) == 30
        assert trainer.history.eval_iterations == [25]
        assert trainer.history.as_dict()["loss"] == trainer.history.loss

    def test_callbacks_invoked(self, mlp_trainer_factory, small_mlp):
        callback = RecordingCallback()
        trainer = mlp_trainer_factory(small_mlp, [callback])
        trainer.run(5)
        assert callback.begin_calls == 1
        assert callback.end_calls == 1
        assert callback.iterations == [1, 2, 3, 4, 5]

    def test_regularizer_penalty_recorded(self, mlp_trainer_factory, small_mlp):
        trainer = mlp_trainer_factory(small_mlp)
        trainer.add_regularizer(L2Regularizer(small_mlp.parameters(), strength=0.01))
        trainer.run(3)
        assert all(p > 0 for p in trainer.history.penalty)
        trainer.remove_regularizer(trainer.regularizers[0])
        trainer.run(2)
        assert trainer.history.penalty[-1] == 0.0

    def test_loss_decreases_on_easy_data(self, mlp_trainer_factory, small_mlp):
        trainer = mlp_trainer_factory(small_mlp)
        trainer.run(120)
        early = np.mean(trainer.history.loss[:10])
        late = np.mean(trainer.history.loss[-10:])
        assert late < early

    def test_rebind_optimizer_tracks_new_parameters(self, mlp_trainer_factory, small_mlp):
        trainer = mlp_trainer_factory(small_mlp)
        layer = small_mlp.get_layer("fc1")
        layer.weight.data = layer.weight.data.copy()  # replace the array object
        trainer.rebind_optimizer()
        assert any(p is layer.weight for p in trainer.optimizer.parameters)

    def test_invalid_arguments(self, mlp_trainer_factory, small_mlp):
        trainer = mlp_trainer_factory(small_mlp)
        with pytest.raises(TrainingError):
            trainer.run(-1)
        with pytest.raises(TrainingError):
            Trainer(
                small_mlp,
                SoftmaxCrossEntropy(),
                trainer.optimizer,
                trainer.train_loader,
                eval_interval=0,
            )

    def test_run_zero_iterations_is_noop(self, mlp_trainer_factory, small_mlp):
        trainer = mlp_trainer_factory(small_mlp)
        history = trainer.run(0)
        assert history.iterations == []

    def test_epoch_wraparound(self, blob_data):
        train, test = blob_data
        net = build_mlp(20, [8], 4, rng=0)
        loader = DataLoader(train, batch_size=64, shuffle=False, rng=0)
        trainer = Trainer(
            net, SoftmaxCrossEntropy(), SGD(net.parameters(), lr=0.01), loader,
            eval_data=test.arrays(),
        )
        # More iterations than batches per epoch forces the loader to restart.
        trainer.run(len(loader) * 3 + 1)
        assert trainer.iteration == len(loader) * 3 + 1
