"""Lockstep training parity tests.

The contract under test: K-point lockstep training — stacked forward/backward,
stacked-state SGD, per-point-λ group Lasso — is **bit-identical** to K
independent serial :class:`~repro.nn.trainer.Trainer` runs, for MLP and conv
architectures, with and without regularizers, including mid-run pruning-mask
application and structural divergence (a restructured point drops out of the
stack and finishes on the serial path).
"""

import copy

import numpy as np
import pytest

from repro.core import (
    CrossbarGroupLasso,
    GroupConnectionDeleter,
    GroupDeletionConfig,
    LockstepCrossbarGroupLasso,
    convert_to_lowrank,
    derive_network_groups,
    flatten_groups,
    run_lockstep_deletion,
)
from repro.data import ArrayDataset, DataLoader, make_gaussian_blobs, make_mnist_like
from repro.data.transforms import train_test_statistics
from repro.exceptions import LayerError, TrainingError
from repro.models import build_mlp
from repro.nn import (
    SGD,
    Callback,
    Conv2D,
    Dropout,
    Flatten,
    GroupLassoRegularizer,
    Linear,
    LockstepSGD,
    LockstepTrainer,
    MaxPool2D,
    NetworkStack,
    PerPointRegularizers,
    ReLU,
    Sequential,
    SoftmaxCrossEntropy,
    StackedParameter,
    StepLR,
    Trainer,
)
from repro.nn.parameter import Parameter

K = 3
LOADER_SEED = 17


@pytest.fixture(scope="module")
def blob_data():
    train, test = make_gaussian_blobs(
        num_classes=4, num_features=12, samples_per_class=30, separation=4.0, seed=5
    )
    mean, std = train.inputs.mean(), train.inputs.std()
    return (
        ArrayDataset((train.inputs - mean) / std, train.targets),
        ArrayDataset((test.inputs - mean) / std, test.targets),
    )


@pytest.fixture(scope="module")
def image_data():
    train, test = make_mnist_like(
        train_samples=64, test_samples=32, image_size=8, seed=3
    )
    return train_test_statistics(train, test)


def build_conv_net(seed):
    return Sequential(
        [
            Conv2D(1, 4, 3, padding=1, name="conv1", rng=seed),
            ReLU(name="relu1"),
            MaxPool2D(2, name="pool1"),
            Conv2D(4, 6, 3, name="conv2", rng=seed + 40),
            ReLU(name="relu2"),
            Flatten(name="flatten"),
            Linear(6 * 2 * 2, 10, name="fc", rng=seed + 80),
        ]
    )


def serial_run(
    network,
    train_set,
    *,
    iterations,
    lr=0.05,
    regularizers=(),
    callbacks=(),
    eval_data=None,
    eval_interval=10,
    weight_decay=0.0,
):
    loader = DataLoader(train_set, batch_size=16, shuffle=True, rng=LOADER_SEED)
    optimizer = SGD(
        network.parameters(), lr=lr, momentum=0.9, weight_decay=weight_decay
    )
    trainer = Trainer(
        network,
        SoftmaxCrossEntropy(),
        optimizer,
        loader,
        eval_data=eval_data,
        callbacks=list(callbacks),
        eval_interval=eval_interval,
    )
    for regularizer in regularizers:
        trainer.add_regularizer(regularizer)
    trainer.run(iterations)
    return trainer


def lockstep_run(
    networks,
    train_set,
    *,
    iterations,
    lr=0.05,
    regularizers=(),
    callbacks=(),
    eval_data=None,
    eval_interval=10,
    weight_decay=0.0,
    loaders=None,
):
    stack = NetworkStack(networks)
    optimizer = LockstepSGD(
        stack.parameters, lr=lr, momentum=0.9, weight_decay=weight_decay
    )
    if loaders is None:
        loaders = DataLoader(train_set, batch_size=16, shuffle=True, rng=LOADER_SEED)
    trainer = LockstepTrainer(
        stack,
        SoftmaxCrossEntropy(),
        optimizer,
        loaders,
        eval_data=eval_data,
        callbacks=callbacks,
        eval_interval=eval_interval,
    )
    for regularizer in regularizers:
        trainer.add_regularizer(regularizer)
    trainer.run(iterations)
    trainer.finalize()
    return trainer


def assert_networks_identical(serial_nets, lockstep_nets):
    for serial_net, lockstep_net in zip(serial_nets, lockstep_nets):
        for (name, a), (_, b) in zip(
            serial_net.named_parameters(), lockstep_net.named_parameters()
        ):
            np.testing.assert_array_equal(a.data, b.data, err_msg=name)
            if a.mask is None:
                assert b.mask is None
            else:
                np.testing.assert_array_equal(a.mask, b.mask, err_msg=name)


def assert_histories_identical(serial_trainers, lockstep_trainer):
    for serial, history in zip(serial_trainers, lockstep_trainer.histories):
        assert serial.history.loss == history.loss
        assert serial.history.penalty == history.penalty
        assert serial.history.eval_iterations == history.eval_iterations
        assert serial.history.eval_accuracy == history.eval_accuracy


class TestLockstepParity:
    def test_mlp_bit_identical(self, blob_data):
        train_set, test_set = blob_data
        serial_nets = [build_mlp(12, [16, 10], 4, rng=seed) for seed in range(K)]
        lock_nets = [copy.deepcopy(n) for n in serial_nets]
        serial = [
            serial_run(
                n, train_set, iterations=23, eval_data=test_set.arrays(),
                weight_decay=1e-4,
            )
            for n in serial_nets
        ]
        trainer = lockstep_run(
            lock_nets, train_set, iterations=23, eval_data=test_set.arrays(),
            weight_decay=1e-4,
        )
        assert_networks_identical(serial_nets, lock_nets)
        assert_histories_identical(serial, trainer)

    def test_conv_bit_identical(self, image_data):
        train_set, test_set = image_data
        serial_nets = [build_conv_net(seed) for seed in range(K)]
        lock_nets = [copy.deepcopy(n) for n in serial_nets]
        serial = [
            serial_run(n, train_set, iterations=12, eval_data=test_set.arrays())
            for n in serial_nets
        ]
        trainer = lockstep_run(
            lock_nets, train_set, iterations=12, eval_data=test_set.arrays()
        )
        assert_networks_identical(serial_nets, lock_nets)
        assert_histories_identical(serial, trainer)

    def test_lowrank_conv_with_per_point_lambda_lasso(self, image_data):
        train_set, _ = image_data
        base = convert_to_lowrank(build_conv_net(9))
        serial_nets = [copy.deepcopy(base) for _ in range(K)]
        lock_nets = [copy.deepcopy(base) for _ in range(K)]
        lambdas = [0.01, 0.04, 0.09]
        serial = [
            serial_run(
                net,
                train_set,
                iterations=14,
                regularizers=[
                    CrossbarGroupLasso(
                        derive_network_groups(net, include_small_matrices=True), lam
                    )
                ],
            )
            for net, lam in zip(serial_nets, lambdas)
        ]
        stack = NetworkStack(lock_nets)
        grouped = [
            derive_network_groups(net, include_small_matrices=True)
            for net in lock_nets
        ]
        optimizer = LockstepSGD(stack.parameters, lr=0.05, momentum=0.9)
        trainer = LockstepTrainer(
            stack,
            SoftmaxCrossEntropy(),
            optimizer,
            DataLoader(train_set, batch_size=16, shuffle=True, rng=LOADER_SEED),
        )
        trainer.add_regularizer(LockstepCrossbarGroupLasso(stack, grouped, lambdas))
        trainer.run(14)
        trainer.finalize()
        assert_networks_identical(serial_nets, lock_nets)
        for serial_trainer, history in zip(serial, trainer.histories):
            assert serial_trainer.history.penalty == history.penalty

    def test_per_point_flat_lasso_wrapper(self, blob_data):
        """The generic PerPointRegularizers composition is serial-identical too."""
        train_set, _ = blob_data
        base = convert_to_lowrank(build_mlp(12, [16, 10], 4, rng=2))
        serial_nets = [copy.deepcopy(base) for _ in range(2)]
        lock_nets = [copy.deepcopy(base) for _ in range(2)]
        lambdas = [0.02, 0.07]
        serial = [
            serial_run(
                net,
                train_set,
                iterations=11,
                regularizers=[
                    GroupLassoRegularizer(
                        flatten_groups(
                            derive_network_groups(net, include_small_matrices=True)
                        ),
                        lam,
                    )
                ],
            )
            for net, lam in zip(serial_nets, lambdas)
        ]
        stack = NetworkStack(lock_nets)
        regularizer = PerPointRegularizers(
            [
                GroupLassoRegularizer(
                    flatten_groups(
                        derive_network_groups(net, include_small_matrices=True)
                    ),
                    lam,
                )
                for net, lam in zip(lock_nets, lambdas)
            ]
        )
        trainer = LockstepTrainer(
            stack,
            SoftmaxCrossEntropy(),
            LockstepSGD(stack.parameters, lr=0.05, momentum=0.9),
            DataLoader(train_set, batch_size=16, shuffle=True, rng=LOADER_SEED),
            regularizers=[regularizer],
        )
        trainer.run(11)
        trainer.finalize()
        assert_networks_identical(serial_nets, lock_nets)
        for serial_trainer, history in zip(serial, trainer.histories):
            assert serial_trainer.history.penalty == history.penalty

    def test_zero_strength_point_in_grid(self, blob_data):
        """A λ=0 baseline point keeps the whole stack bit-identical to serial."""
        train_set, _ = blob_data
        base = convert_to_lowrank(build_mlp(12, [16, 10], 4, rng=3))
        serial_nets = [copy.deepcopy(base) for _ in range(3)]
        lock_nets = [copy.deepcopy(base) for _ in range(3)]
        lambdas = [0.0, 0.04, 0.09]
        serial = [
            serial_run(
                net,
                train_set,
                iterations=12,
                regularizers=[
                    CrossbarGroupLasso(
                        derive_network_groups(net, include_small_matrices=True), lam
                    )
                ],
            )
            for net, lam in zip(serial_nets, lambdas)
        ]
        stack = NetworkStack(lock_nets)
        grouped = [
            derive_network_groups(net, include_small_matrices=True) for net in lock_nets
        ]
        trainer = LockstepTrainer(
            stack,
            SoftmaxCrossEntropy(),
            LockstepSGD(stack.parameters, lr=0.05, momentum=0.9),
            DataLoader(train_set, batch_size=16, shuffle=True, rng=LOADER_SEED),
            regularizers=[LockstepCrossbarGroupLasso(stack, grouped, lambdas)],
        )
        trainer.run(12)
        trainer.finalize()
        assert_networks_identical(serial_nets, lock_nets)
        for serial_trainer, history in zip(serial, trainer.histories):
            assert serial_trainer.history.penalty == history.penalty

    def test_per_point_learning_rate_schedules(self, blob_data):
        train_set, _ = blob_data
        serial_nets = [build_mlp(12, [14], 4, rng=seed) for seed in range(2)]
        lock_nets = [copy.deepcopy(n) for n in serial_nets]
        schedules = [0.05, StepLR(0.08, step_size=5, gamma=0.5)]
        for net, lr in zip(serial_nets, schedules):
            serial_run(net, train_set, iterations=13, lr=lr)
        stack = NetworkStack(lock_nets)
        trainer = LockstepTrainer(
            stack,
            SoftmaxCrossEntropy(),
            LockstepSGD(stack.parameters, lr=[0.05, StepLR(0.08, step_size=5, gamma=0.5)], momentum=0.9),
            DataLoader(train_set, batch_size=16, shuffle=True, rng=LOADER_SEED),
        )
        trainer.run(13)
        trainer.finalize()
        assert_networks_identical(serial_nets, lock_nets)

    def test_per_point_loaders(self, blob_data):
        """Independent per-point data streams (per_point_seed) stay bit-identical."""
        train_set, _ = blob_data
        seeds = [101, 202, 303]
        serial_nets = [build_mlp(12, [14], 4, rng=s) for s in range(K)]
        lock_nets = [copy.deepcopy(n) for n in serial_nets]
        for net, seed in zip(serial_nets, seeds):
            loader = DataLoader(train_set, batch_size=16, shuffle=True, rng=seed)
            optimizer = SGD(net.parameters(), lr=0.05, momentum=0.9)
            Trainer(net, SoftmaxCrossEntropy(), optimizer, loader).run(15)
        loaders = [
            DataLoader(train_set, batch_size=16, shuffle=True, rng=seed)
            for seed in seeds
        ]
        lockstep_run(lock_nets, train_set, iterations=15, loaders=loaders)
        assert_networks_identical(serial_nets, lock_nets)


class _MaskCallback(Callback):
    """Install a point-specific pruning mask on fc1 mid-run (set_mask re-binds data)."""

    def __init__(self, point_index, at_iteration=4):
        self.point_index = point_index
        self.at_iteration = at_iteration

    def on_iteration_end(self, trainer, iteration):
        if iteration != self.at_iteration:
            return
        weight = trainer.network.get_layer("fc1").weight
        mask = np.ones(weight.data.shape, dtype=bool)
        mask[self.point_index :: 3] = False
        weight.set_mask(mask)


class _ClipCallback(Callback):
    """Halve fc1's rank mid-run (a shape-changing structural divergence)."""

    def __init__(self, at_iteration=5):
        self.at_iteration = at_iteration

    def on_iteration_end(self, trainer, iteration):
        if iteration != self.at_iteration:
            return
        layer = trainer.network.get_layer("fc1")
        new_rank = max(1, layer.rank // 2)
        layer.set_factors(layer.u.data[:, :new_rank], layer.v.data[:, :new_rank])
        trainer.rebind_optimizer()


class TestStructuralChanges:
    def test_mid_run_mask_application_stays_stacked(self, blob_data):
        train_set, _ = blob_data
        serial_nets = [build_mlp(12, [16, 10], 4, rng=seed) for seed in range(K)]
        lock_nets = [copy.deepcopy(n) for n in serial_nets]
        serial = [
            serial_run(
                net, train_set, iterations=16, callbacks=[_MaskCallback(index)]
            )
            for index, net in enumerate(serial_nets)
        ]
        stack = NetworkStack(lock_nets)
        trainer = LockstepTrainer(
            stack,
            SoftmaxCrossEntropy(),
            LockstepSGD(stack.parameters, lr=0.05, momentum=0.9),
            DataLoader(train_set, batch_size=16, shuffle=True, rng=LOADER_SEED),
            callbacks=[[_MaskCallback(index)] for index in range(K)],
        )
        trainer.run(16)
        # Masks change no shapes: every point keeps the stacked fast path.
        assert trainer.num_stacked == K and trainer.num_detached == 0
        trainer.finalize()
        assert_networks_identical(serial_nets, lock_nets)
        assert_histories_identical(serial, trainer)

    def test_structural_divergence_detaches_point(self, blob_data):
        train_set, _ = blob_data
        base = convert_to_lowrank(build_mlp(12, [16, 10], 4, rng=4))
        serial_nets = [copy.deepcopy(base) for _ in range(K)]
        lock_nets = [copy.deepcopy(base) for _ in range(K)]
        # Only point 1 clips its rank mid-run.
        serial = [
            serial_run(
                net,
                train_set,
                iterations=18,
                callbacks=[_ClipCallback()] if index == 1 else (),
            )
            for index, net in enumerate(serial_nets)
        ]
        stack = NetworkStack(lock_nets)
        trainer = LockstepTrainer(
            stack,
            SoftmaxCrossEntropy(),
            LockstepSGD(stack.parameters, lr=0.05, momentum=0.9),
            DataLoader(train_set, batch_size=16, shuffle=True, rng=LOADER_SEED),
            callbacks=[[], [_ClipCallback()], []],
        )
        trainer.run(18)
        assert trainer.num_stacked == K - 1 and trainer.num_detached == 1
        trainer.finalize()
        assert lock_nets[1].get_layer("fc1").rank == base.get_layer("fc1").rank // 2
        assert_networks_identical(serial_nets, lock_nets)
        assert_histories_identical(serial, trainer)


    def test_remove_regularizer_reaches_detached_points(self, blob_data):
        """A penalty removed mid-run must also stop for points that diverged
        onto the serial path (the run -> remove -> finetune driver flow)."""
        train_set, _ = blob_data
        base = convert_to_lowrank(build_mlp(12, [16, 10], 4, rng=8))
        serial_nets = [copy.deepcopy(base) for _ in range(2)]
        lock_nets = [copy.deepcopy(base) for _ in range(2)]
        lambdas = [0.03, 0.08]
        # The penalty covers fc2 only: point 1 clips fc1 mid-way through the
        # penalized phase (groups do not survive a rank change of their own
        # layer, in serial and lockstep alike).
        penalized = dict(layers=["fc2"], include_small_matrices=True)
        for index, (net, lam) in enumerate(zip(serial_nets, lambdas)):
            loader = DataLoader(train_set, batch_size=16, shuffle=True, rng=LOADER_SEED)
            trainer = Trainer(
                net,
                SoftmaxCrossEntropy(),
                SGD(net.parameters(), lr=0.05, momentum=0.9),
                loader,
                callbacks=[_ClipCallback()] if index == 1 else (),
            )
            regularizer = CrossbarGroupLasso(
                derive_network_groups(net, **penalized), lam
            )
            trainer.add_regularizer(regularizer)
            trainer.run(10)
            trainer.remove_regularizer(regularizer)
            trainer.run(8)
        stack = NetworkStack(lock_nets)
        grouped = [derive_network_groups(net, **penalized) for net in lock_nets]
        trainer = LockstepTrainer(
            stack,
            SoftmaxCrossEntropy(),
            LockstepSGD(stack.parameters, lr=0.05, momentum=0.9),
            DataLoader(train_set, batch_size=16, shuffle=True, rng=LOADER_SEED),
            callbacks=[[], [_ClipCallback()]],
        )
        regularizer = LockstepCrossbarGroupLasso(stack, grouped, lambdas)
        trainer.add_regularizer(regularizer)
        trainer.run(10)
        assert trainer.num_detached == 1
        trainer.remove_regularizer(regularizer)
        trainer.run(8)
        trainer.finalize()
        assert_networks_identical(serial_nets, lock_nets)
        for history in trainer.histories:
            assert history.penalty[-1] == 0.0  # penalty gone for every point


class TestLockstepDeletionDriver:
    def test_matches_serial_deleter_per_point(self, blob_data):
        train_set, test_set = blob_data
        base = convert_to_lowrank(build_mlp(12, [16, 10], 4, rng=6))
        lambdas = [0.01, 0.05, 0.1]
        config = dict(
            iterations=20, finetune_iterations=10, include_small_matrices=True
        )

        def trainer_factory(network, callbacks=()):
            loader = DataLoader(train_set, batch_size=16, shuffle=True, rng=LOADER_SEED)
            optimizer = SGD(network.parameters(), lr=0.05, momentum=0.9)
            return Trainer(
                network, SoftmaxCrossEntropy(), optimizer, loader,
                callbacks=list(callbacks),
            )

        serial_results = []
        for lam in lambdas:
            network = copy.deepcopy(base)
            deleter = GroupConnectionDeleter(
                GroupDeletionConfig(strength=lam, **config), record_interval=8
            )
            serial_results.append(deleter.run(network, trainer_factory))

        lock_nets = [copy.deepcopy(base) for _ in lambdas]

        def lockstep_factory(networks, callbacks_per_point):
            stack = NetworkStack(networks)
            optimizer = LockstepSGD(stack.parameters, lr=0.05, momentum=0.9)
            return LockstepTrainer(
                stack,
                SoftmaxCrossEntropy(),
                optimizer,
                DataLoader(train_set, batch_size=16, shuffle=True, rng=LOADER_SEED),
                callbacks=callbacks_per_point,
            )

        lock_results = run_lockstep_deletion(
            lock_nets,
            [GroupDeletionConfig(strength=lam, **config) for lam in lambdas],
            lockstep_factory,
            record_interval=8,
        )
        for serial, lock in zip(serial_results, lock_results):
            assert serial.wire_fractions() == lock.wire_fractions()
            assert serial.routing_area_fractions() == lock.routing_area_fractions()
            assert serial.deleted_groups == lock.deleted_groups
            assert serial.trace.as_dict() == lock.trace.as_dict()
        assert_networks_identical(
            [r.network for r in serial_results], [r.network for r in lock_results]
        )


class TestStackingValidation:
    def test_rejects_mixed_architectures(self):
        with pytest.raises(LayerError):
            NetworkStack([build_mlp(8, [6], 3, rng=0), build_mlp(8, [7], 3, rng=0)])

    def test_rejects_active_dropout(self):
        nets = [
            Sequential([Linear(6, 4, name="fc", rng=s), Dropout(0.5, name="drop")])
            for s in range(2)
        ]
        with pytest.raises(LayerError):
            NetworkStack(nets)

    def test_rejects_empty(self):
        with pytest.raises(LayerError):
            NetworkStack([])

    def test_callbacks_must_match_points(self, blob_data):
        train_set, _ = blob_data
        nets = [build_mlp(12, [8], 4, rng=s) for s in range(2)]
        stack = NetworkStack(nets)
        with pytest.raises(TrainingError):
            LockstepTrainer(
                stack,
                SoftmaxCrossEntropy(),
                LockstepSGD(stack.parameters, lr=0.05),
                DataLoader(train_set, batch_size=16, rng=1),
                callbacks=[[]],
            )

    def test_lockstep_sgd_validation(self):
        sp = StackedParameter([Parameter(np.zeros(3)), Parameter(np.zeros(3))])
        with pytest.raises(ValueError):
            LockstepSGD([])
        with pytest.raises(ValueError):
            LockstepSGD([sp], lr=[0.1])  # 1 lr for 2 points
        with pytest.raises(ValueError):
            LockstepSGD([sp], nesterov=True)

    def test_stacked_parameter_shape_mismatch(self):
        with pytest.raises(Exception):
            StackedParameter([Parameter(np.zeros(3)), Parameter(np.zeros(2))])


class TestStackedParameter:
    def test_aliasing_and_release(self):
        params = [Parameter(np.arange(4.0) + k) for k in range(2)]
        sp = StackedParameter(params)
        assert params[0].data.base is sp.data
        sp.data[0, 0] = 99.0
        assert params[0].data[0] == 99.0
        sp.detach_all()
        assert params[0].data.base is None
        np.testing.assert_array_equal(params[0].data, sp.data[0])

    def test_refresh_absorbs_mask(self):
        params = [Parameter(np.ones(4)) for _ in range(2)]
        sp = StackedParameter(params)
        mask = np.array([True, False, True, False])
        params[1].set_mask(mask)  # re-binds data
        assert sp.point_status(1) == "rebound"
        sp.refresh_point(1)
        assert sp.point_status(1) == "intact"
        np.testing.assert_array_equal(sp.mask[1], mask)
        np.testing.assert_array_equal(sp.data[1], np.array([1.0, 0.0, 1.0, 0.0]))

    def test_drop_point_shrinks_slab(self):
        params = [Parameter(np.full(3, float(k))) for k in range(3)]
        sp = StackedParameter(params)
        sp.drop_point(1)
        assert sp.num_points == 2
        np.testing.assert_array_equal(sp.data[1], np.full(3, 2.0))
        assert params[1].data.base is None  # released with its own copy
        assert params[0].data.base is sp.data  # remaining points re-attached
