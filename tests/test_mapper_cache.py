"""Tests for the mapper's memoized tiling plans and vectorized tile stats."""

import numpy as np
import pytest

from repro.hardware import mapper as mapper_module
from repro.hardware.library import CrossbarLibrary
from repro.hardware.mapper import NetworkMapper
from repro.hardware.routing import count_remaining_wires
from repro.hardware.technology import TechnologyParameters
from repro.hardware.tiling import plan_tiling
from repro.nn import Linear, ReLU, Sequential


def tiny_mapper():
    technology = TechnologyParameters(max_crossbar_rows=8, max_crossbar_cols=8)
    return NetworkMapper(
        technology=technology, library=CrossbarLibrary(technology=technology)
    )


def repeated_shape_network():
    """Three weighted layers, two of which share the same matrix shape."""
    return Sequential(
        [
            Linear(16, 16, rng=0, name="fc1"),
            ReLU(name="r1"),
            Linear(16, 16, rng=1, name="fc2"),
            ReLU(name="r2"),
            Linear(16, 4, rng=2, name="fc3"),
        ],
        name="repeat",
    )


@pytest.fixture
def plan_counter(monkeypatch):
    """Count invocations of the underlying tiling planner."""
    calls = []

    def counting_plan_tiling(rows, cols, *, library, name=""):
        calls.append((rows, cols))
        return plan_tiling(rows, cols, library=library, name=name)

    monkeypatch.setattr(mapper_module, "plan_tiling", counting_plan_tiling)
    return calls


class TestPlanMemoization:
    def test_map_network_plans_each_shape_exactly_once(self, plan_counter):
        mapper = tiny_mapper()
        network = repeated_shape_network()
        mapper.map_network(network)
        # fc1 and fc2 share the 16x16 shape; fc3 maps as Wᵀ with shape 16x4.
        distinct_shapes = {(16, 16), (16, 4)}
        assert sorted(plan_counter) == sorted(distinct_shapes)

    def test_repeat_calls_plan_nothing_new(self, plan_counter):
        mapper = tiny_mapper()
        network = repeated_shape_network()
        first = mapper.map_network(network)
        planned_after_first = len(plan_counter)
        second = mapper.map_network(network)
        assert len(plan_counter) == planned_after_first
        assert second.total_crossbar_area_f2 == first.total_crossbar_area_f2

    def test_plan_network_and_big_matrices_share_cache(self, plan_counter):
        mapper = tiny_mapper()
        network = repeated_shape_network()
        mapper.plan_network(network)
        planned = len(plan_counter)
        mapper.big_matrices(network)
        mapper.crossbar_area(network)
        assert len(plan_counter) == planned

    def test_cached_plans_carry_matrix_names(self):
        mapper = tiny_mapper()
        plans = mapper.plan_network(repeated_shape_network())
        assert set(plans) == {"fc1_w", "fc2_w", "fc3_w"}
        for name, plan in plans.items():
            assert plan.name == name
        # Shared shape, distinct labels, identical geometry.
        assert plans["fc1_w"].tile_shape() == plans["fc2_w"].tile_shape()

    def test_clear_plan_cache(self, plan_counter):
        mapper = tiny_mapper()
        network = repeated_shape_network()
        mapper.map_network(network)
        first = len(plan_counter)
        mapper.clear_plan_cache()
        mapper.map_network(network)
        assert len(plan_counter) == 2 * first

    def test_distinct_libraries_do_not_collide(self):
        technology = TechnologyParameters(max_crossbar_rows=8, max_crossbar_cols=8)
        wide = TechnologyParameters(max_crossbar_rows=64, max_crossbar_cols=64)
        network = repeated_shape_network()
        small = NetworkMapper(
            technology=technology, library=CrossbarLibrary(technology=technology)
        )
        big = NetworkMapper(technology=wide, library=CrossbarLibrary(technology=wide))
        assert small.plan_network(network)["fc1_w"].num_crossbars == 4
        assert big.plan_network(network)["fc1_w"].num_crossbars == 1


class TestVectorizedTileStats:
    def test_count_remaining_wires_matches_tile_loop(self, rng):
        plan = plan_tiling(16, 12, library=CrossbarLibrary(
            technology=TechnologyParameters(max_crossbar_rows=4, max_crossbar_cols=4)
        ))
        weights = rng.standard_normal((16, 12))
        weights[weights < 0.3] = 0.0
        expected = 0
        for _, _, row_slice, col_slice in plan.iter_tiles():
            block = np.abs(weights[row_slice, col_slice]) > 0.0
            expected += int(block.any(axis=1).sum()) + int(block.any(axis=0).sum())
        assert count_remaining_wires(weights, plan) == expected

    def test_count_empty_tiles_matches_instances(self, rng):
        plan = plan_tiling(16, 12, library=CrossbarLibrary(
            technology=TechnologyParameters(max_crossbar_rows=4, max_crossbar_cols=4)
        ))
        weights = rng.standard_normal((16, 12))
        weights[:4, :4] = 0.0  # tile (0, 0) fully empty
        weights[8:12, :] = 0.0  # the whole third tile row empty
        instances = plan.instantiate(weights)
        expected = sum(1 for inst in instances if inst.is_empty(0.0))
        assert plan.count_empty_tiles(weights, 0.0) == expected
        assert expected == 1 + 3

    def test_empty_tiles_respect_threshold(self):
        plan = plan_tiling(8, 8, library=CrossbarLibrary(
            technology=TechnologyParameters(max_crossbar_rows=4, max_crossbar_cols=4)
        ))
        weights = np.full((8, 8), 1e-9)
        assert plan.count_empty_tiles(weights, 0.0) == 0
        assert plan.count_empty_tiles(weights, 1e-6) == 4
