"""Tests for the observability stack (``repro.obs``) and its lint rule.

Unit coverage: typed instruments (counter monotonicity, histogram exact
nearest-rank percentiles, registry type-collision errors), null-object
no-ops, tracer ring/checksum/span semantics, the ``uncounted-rejection``
project rule, and the ``metrics`` / ``trace`` CLI verbs.
"""

import json
import math
import threading

import pytest

from repro.exceptions import ReproError
from repro.obs import (
    DEFAULT_BUCKETS,
    NULL_OBS,
    NULL_REGISTRY,
    NULL_TRACER,
    MetricsRegistry,
    Observability,
    Tracer,
    create_observability,
    load_metrics_snapshot,
    metrics_path,
    obs_root,
    percentile,
    read_trace_file,
    record_checksum,
    strip_timing_fields,
    summarize_traces,
    traces_path,
    write_metrics_snapshot,
)
from repro.obs.metrics import Histogram


# ------------------------------------------------------------- percentiles
class TestPercentile:
    def test_nearest_rank_known_values(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert percentile(values, 50) == 5.0
        assert percentile(values, 95) == 10.0
        assert percentile(values, 99) == 10.0
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 10.0

    def test_single_sample_is_every_percentile(self):
        assert percentile([3.5], 50) == 3.5
        assert percentile([3.5], 99) == 3.5

    def test_order_independent(self):
        assert percentile([5.0, 1.0, 3.0], 50) == 3.0

    def test_empty_is_nan_and_bad_q_raises(self):
        assert math.isnan(percentile([], 99))
        with pytest.raises(ReproError):
            percentile([1.0], 101)


# -------------------------------------------------------------- instruments
class TestInstruments:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ReproError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(3.0)
        gauge.add(-1.5)
        assert gauge.value == 1.5

    def test_histogram_snapshot_percentiles_are_exact(self):
        histogram = Histogram("h", buckets=(0.1, 1.0))
        observations = [0.05, 0.2, 0.3, 0.7, 2.0]
        for value in observations:
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 5
        assert snap["buckets"] == {"le_0.1": 1, "le_1": 3, "overflow": 1}
        for q, key in ((50, "p50"), (95, "p95"), (99, "p99")):
            assert snap[key] == percentile(observations, q)
        assert snap["min"] == 0.05 and snap["max"] == 2.0

    def test_histogram_ring_keeps_recent_window(self):
        histogram = Histogram("h", buckets=(1.0,), sample_window=4)
        for value in range(10):
            histogram.observe(float(value))
        snap = histogram.snapshot()
        assert snap["count"] == 10  # totals keep everything
        assert snap["window"] == 4  # percentiles cover the recent window
        assert snap["p50"] == percentile([6.0, 7.0, 8.0, 9.0], 50)

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ReproError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ReproError):
            Histogram("h", buckets=())

    def test_registry_shares_and_type_checks(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        with pytest.raises(ReproError):
            registry.gauge("x")

    def test_timer_observes_elapsed(self):
        ticks = iter([1.0, 1.25])
        registry = MetricsRegistry(clock=lambda: next(ticks))
        with registry.timer("t"):
            pass
        snap = registry.snapshot()["histograms"]["t"]
        assert snap["count"] == 1
        assert snap["p50"] == pytest.approx(0.25)

    def test_snapshot_is_canonical_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        registry.gauge("depth").set(3)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["gauges"] == {"depth": 3.0}

    def test_concurrent_increments_are_not_lost(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")

        def bump():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 4000


class TestNullObjects:
    def test_null_registry_is_disabled_and_stateless(self):
        assert not NULL_REGISTRY.enabled
        NULL_REGISTRY.counter("c").inc()
        NULL_REGISTRY.gauge("g").set(9)
        NULL_REGISTRY.histogram("h").observe(1.0)
        with NULL_REGISTRY.timer("t"):
            pass
        assert NULL_REGISTRY.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_null_tracer_emits_nothing(self):
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.emit("request", name="x") is None
        with NULL_TRACER.span("s"):
            pass
        assert NULL_TRACER.records() == []

    def test_null_obs_reports_disabled(self):
        assert not NULL_OBS.enabled
        assert Observability(metrics=MetricsRegistry()).enabled


# ------------------------------------------------------------------- tracer
class TestTracer:
    def test_emit_assigns_sequential_seq_and_checksum(self, tmp_path):
        tracer = Tracer(tmp_path / "traces.jsonl")
        first = tracer.emit("request", name="a")
        second = tracer.emit("request", name="b")
        assert (first["seq"], second["seq"]) == (0, 1)
        assert first["sha256"] == record_checksum(first)

    def test_ring_buffer_is_bounded_oldest_first(self):
        tracer = Tracer(None, capacity=3)
        for index in range(5):
            tracer.emit("request", request=index)
        kept = [record["request"] for record in tracer.records()]
        assert kept == [2, 3, 4]

    def test_file_roundtrip_skips_corruption(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        tracer = Tracer(path)
        tracer.emit("request", name="keep")
        tampered = tracer.emit("request", name="tamper")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json\n")
            handle.write('"a string, not an object"\n')
            broken = dict(tampered, name="edited")  # checksum now wrong
            handle.write(json.dumps(broken) + "\n")
        records = read_trace_file(path)
        assert [r["name"] for r in records] == ["keep", "tamper"]

    def test_span_parent_links_and_error_status(self):
        tracer = Tracer(None)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        spans = {record["name"]: record for record in tracer.records("span")}
        assert spans["inner"]["parent"] == spans["outer"]["span_id"]
        assert spans["outer"]["parent"] is None
        assert spans["boom"]["status"] == "error"
        assert spans["boom"]["parent"] is None

    def test_strip_timing_fields_removes_only_timing(self):
        record = {
            "kind": "request",
            "name": "x",
            "queue_wait_s": 0.1,
            "latency_s": 0.2,
            "elapsed_s": 0.3,
            "sha256": "deadbeef",
            "outcome": "completed",
        }
        assert strip_timing_fields(record) == {
            "kind": "request",
            "name": "x",
            "outcome": "completed",
        }

    def test_close_stops_emission(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl")
        tracer.emit("request", name="a")
        tracer.close()
        assert tracer.emit("request", name="b") is None
        assert len(read_trace_file(tmp_path / "t.jsonl")) == 1


class TestSummarize:
    def test_summary_matches_percentile_helper(self):
        records = [
            {"kind": "request", "outcome": "completed", "queue_wait_s": w,
             "batch_size": 2, "breaker_state": "closed", "degraded": w > 0.2}
            for w in (0.1, 0.2, 0.3, 0.4)
        ]
        records.append({"kind": "request", "outcome": "queue-full"})
        summary = summarize_traces(records)["requests"]
        assert summary["count"] == 5
        assert summary["outcomes"] == {"completed": 4, "queue-full": 1}
        assert summary["queue_wait_s"]["count"] == 4  # rejects have no wait
        assert summary["queue_wait_s"]["p99"] == percentile(
            [0.1, 0.2, 0.3, 0.4], 99
        )
        assert summary["degraded"] == 2

    def test_node_summary_collects_queue_depths(self):
        records = [
            {"kind": "node", "status": "done", "queue_depth": d,
             "ready_wait_s": 0.01, "elapsed_s": 0.5}
            for d in (1, 0, 2)
        ]
        summary = summarize_traces(records)["nodes"]
        assert summary["queue_depth_samples"] == [1, 0, 2]
        assert summary["statuses"] == {"done": 3}


# ---------------------------------------------------------------- snapshots
class TestSnapshotFiles:
    def test_write_and_load_roundtrip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("serving.submitted").inc(3)
        path = write_metrics_snapshot(registry, tmp_path / "metrics.json")
        snapshot = load_metrics_snapshot(path)
        assert snapshot["counters"]["serving.submitted"] == 3

    def test_load_missing_or_malformed_raises(self, tmp_path):
        with pytest.raises(ReproError):
            load_metrics_snapshot(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("[]")
        with pytest.raises(ReproError):
            load_metrics_snapshot(bad)

    def test_create_observability_layout(self, tmp_path):
        root = obs_root(tmp_path)
        obs = create_observability(root)
        try:
            assert obs.enabled
            assert obs.tracer.path == traces_path(root)
            assert metrics_path(root).parent == root
        finally:
            obs.tracer.close()


# ---------------------------------------------------------------- lint rule
class TestUncountedRejectionRule:
    def test_production_classes_are_all_counted(self):
        from repro.analysis.rules.observability import rejection_messages

        assert rejection_messages() == []

    def test_missing_counter_key_is_caught(self):
        from repro.analysis.rules.observability import rejection_messages
        from repro.serving.types import Rejection

        class OverheatRejection(Rejection):
            code = "overheat"

        problems = rejection_messages(rejection_classes=[OverheatRejection])
        assert any("rejected.overheat" in message for _cls, message in problems)

    def test_duplicate_and_missing_codes_are_caught(self):
        from repro.analysis.rules.observability import rejection_messages
        from repro.serving.types import (
            QueueFullRejection,
            Rejection,
        )

        class CloneRejection(Rejection):
            code = "queue-full"

        class CodelessRejection(Rejection):
            pass  # inherits the parent's code attribute

        problems = rejection_messages(
            rejection_classes=[QueueFullRejection, CloneRejection, CodelessRejection],
            counter_keys=("rejected.queue-full",),
        )
        messages = " | ".join(message for _cls, message in problems)
        assert "reuses rejection code" in messages
        assert "does not define its own" in messages

    def test_stale_counter_key_is_caught(self):
        from repro.analysis.rules.observability import rejection_messages
        from repro.serving.types import QueueFullRejection

        problems = rejection_messages(
            rejection_classes=[QueueFullRejection],
            counter_keys=("rejected.queue-full", "rejected.ghost"),
        )
        assert any("stale" in message for _cls, message in problems)

    def test_registered_in_linter(self):
        from repro.analysis.core import all_rules

        assert "uncounted-rejection" in {rule.id for rule in all_rules()}


# ---------------------------------------------------------------- CLI verbs
class TestObsCli:
    def test_metrics_missing_snapshot_exits_2(self, tmp_path, capsys):
        from repro.experiments.cli import main

        assert main(["metrics", "--store", str(tmp_path)]) == 2
        assert "no metrics snapshot" in capsys.readouterr().err

    def test_metrics_renders_snapshot(self, tmp_path, capsys):
        from repro.experiments.cli import main

        registry = MetricsRegistry()
        registry.counter("serving.submitted").inc(7)
        registry.histogram("serving.queue_wait_s").observe(0.002)
        root = obs_root(tmp_path)
        root.mkdir(parents=True)
        write_metrics_snapshot(registry, metrics_path(root))
        assert main(["metrics", "--store", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "serving.submitted" in out and "7" in out
        assert main(["metrics", "--store", str(tmp_path), "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["counters"]["serving.submitted"] == 7

    def test_trace_filters_and_summarizes(self, tmp_path, capsys):
        from repro.experiments.cli import main

        root = obs_root(tmp_path)
        tracer = Tracer(traces_path(root))
        tracer.emit(
            "request", name="mlp", outcome="completed", queue_wait_s=0.001,
            batch_size=1, breaker_state="closed", degraded=False,
        )
        tracer.emit("node", run="abc123", job="job-1", node="baseline",
                    status="done", queue_depth=2, ready_wait_s=0.0,
                    elapsed_s=0.1)
        tracer.close()
        assert main(["trace", "--store", str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["requests"]["count"] == 1
        assert payload["summary"]["nodes"]["queue_depth_samples"] == [2]
        assert len(payload["records"]) == 2
        # Filter by job id: only the node record survives.
        assert main(["trace", "job-1", "--store", str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "requests" not in payload["summary"]
        assert payload["summary"]["nodes"]["count"] == 1
        # Kind filter plus pretty rendering.
        assert main(["trace", "--kind", "request", "--store", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "requests: 1" in out

    def test_trace_missing_stream_exits_2(self, tmp_path, capsys):
        from repro.experiments.cli import main

        assert main(["trace", "--store", str(tmp_path)]) == 2
        assert "no trace stream" in capsys.readouterr().err
