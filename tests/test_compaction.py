"""Tests for post-deletion crossbar compaction (paper Section 4.2, last paragraph)."""

import numpy as np
import pytest

from repro.core import GroupConnectionDeleter, GroupDeletionConfig, convert_to_lowrank
from repro.exceptions import ShapeError
from repro.hardware import CrossbarLibrary, TechnologyParameters, plan_tiling
from repro.hardware.compaction import (
    CompactedCrossbar,
    compact_matrix,
    compact_network,
    total_compacted_area_fraction,
)
from repro.models import build_mlp


class TestCompactedCrossbar:
    def test_cell_accounting(self):
        xbar = CompactedCrossbar((0, 0), 10, 8, live_rows=4, live_cols=5)
        assert xbar.original_cells == 80
        assert xbar.compacted_cells == 20
        assert xbar.cell_saving == 60
        assert not xbar.is_removable

    def test_removable_when_empty(self):
        assert CompactedCrossbar((0, 0), 10, 8, 0, 3).is_removable
        assert CompactedCrossbar((0, 0), 10, 8, 3, 0).is_removable


class TestCompactMatrix:
    def test_dense_matrix_has_no_saving(self):
        plan = plan_tiling(100, 10, name="m")
        report = compact_matrix(np.ones((100, 10)), plan)
        assert report.area_fraction == pytest.approx(1.0)
        assert report.removable_crossbars == 0
        assert report.num_crossbars == plan.num_crossbars

    def test_empty_tile_is_removable(self):
        plan = plan_tiling(100, 10, name="m")  # 2 tiles of 50x10
        weights = np.ones((100, 10))
        weights[50:] = 0.0
        report = compact_matrix(weights, plan)
        assert report.removable_crossbars == 1
        assert report.area_fraction == pytest.approx(0.5)

    def test_partial_rows_and_columns_shrink_area(self):
        plan = plan_tiling(8, 8, name="m")  # single crossbar
        weights = np.ones((8, 8))
        weights[4:, :] = 0.0  # 4 live rows
        weights[:, 6:] = 0.0  # 6 live cols
        report = compact_matrix(weights, plan)
        assert report.crossbars[0].live_rows == 4
        assert report.crossbars[0].live_cols == 6
        assert report.area_fraction == pytest.approx(24 / 64)
        assert "compacted area" in report.format_summary()

    def test_zero_threshold(self):
        plan = plan_tiling(4, 4, name="m")
        weights = np.full((4, 4), 1e-8)
        report = compact_matrix(weights, plan, zero_threshold=1e-6)
        assert report.area_fraction == 0.0
        assert report.removable_crossbars == 1

    def test_shape_validation(self):
        plan = plan_tiling(4, 4)
        with pytest.raises(ShapeError):
            compact_matrix(np.ones((3, 4)), plan)

    def test_area_respects_technology(self):
        tech = TechnologyParameters(cell_area_f2=8.0)
        plan = plan_tiling(4, 4, name="m")
        report = compact_matrix(np.ones((4, 4)), plan, technology=tech)
        assert report.original_area_f2 == 8.0 * 16


class TestCompactNetwork:
    def test_total_fraction_over_network(self, blob_data, mlp_trainer_factory):
        dense = build_mlp(20, [24], 4, rng=20)
        mlp_trainer_factory(dense).run(100)
        network = convert_to_lowrank(dense)
        tech = TechnologyParameters(max_crossbar_rows=8, max_crossbar_cols=8)
        library = CrossbarLibrary(technology=tech)

        config = GroupDeletionConfig(
            strength=0.06,
            iterations=100,
            finetune_iterations=40,
            include_small_matrices=True,
        )
        GroupConnectionDeleter(config, library=library, record_interval=50).run(
            network, mlp_trainer_factory
        )
        reports = compact_network(network, technology=tech, library=library)
        assert reports
        fraction = total_compacted_area_fraction(reports)
        # Deletion zeroes whole groups, so compaction must save real area.
        assert 0.0 < fraction < 1.0
        for report in reports:
            assert 0.0 <= report.area_fraction <= 1.0

    def test_total_fraction_validation(self):
        with pytest.raises(ValueError):
            total_compacted_area_fraction([])
