"""Regression test: sweeps must never mutate the shared baseline network.

Seed bug: ``sweep_group_deletion`` converted ``baseline_network`` to low rank
without deep-copying first (unlike ``sweep_rank_clipping``), so reusing the
baseline across sweeps silently started later sweeps from a mutated network.
"""

import copy

import numpy as np
import pytest

from repro.experiments import mlp_workload, sweep_group_deletion, train_baseline


@pytest.fixture(scope="module")
def trained_baseline():
    workload = mlp_workload("tiny")
    network, accuracy, setup = train_baseline(workload)
    return workload, network, accuracy, setup


def snapshot(network):
    """Bit-exact snapshot of every parameter value, gradient and mask."""
    state = {}
    for name, param in network.named_parameters():
        state[name] = (
            param.data.copy(),
            param.grad.copy(),
            None if param.mask is None else param.mask.copy(),
        )
    return state


def assert_identical(network, state):
    current = snapshot(network)
    assert sorted(current) == sorted(state)
    for name, (data, grad, mask) in state.items():
        cur_data, cur_grad, cur_mask = current[name]
        assert np.array_equal(cur_data, data), f"{name}: data mutated"
        assert np.array_equal(cur_grad, grad), f"{name}: grad mutated"
        if mask is None:
            assert cur_mask is None, f"{name}: mask appeared"
        else:
            assert np.array_equal(cur_mask, mask), f"{name}: mask mutated"


def test_sweep_group_deletion_leaves_baseline_bit_identical(trained_baseline):
    workload, network, accuracy, setup = trained_baseline
    before = snapshot(network)
    structure_before = [(layer.name, type(layer)) for layer in network]
    result = sweep_group_deletion(
        workload,
        strengths=[0.05],
        setup=setup,
        baseline_network=network,
    )
    assert result.points  # the sweep itself ran
    assert [(layer.name, type(layer)) for layer in network] == structure_before
    assert_identical(network, before)


def test_baseline_reusable_across_repeated_sweeps(trained_baseline):
    """Two identical sweeps from one baseline produce identical results."""
    workload, network, accuracy, setup = trained_baseline
    first = sweep_group_deletion(
        workload, strengths=[0.05], setup=setup, baseline_network=network
    )
    second = sweep_group_deletion(
        workload, strengths=[0.05], setup=setup, baseline_network=network
    )
    assert first.points[0].wire_fractions == second.points[0].wire_fractions
    assert first.points[0].accuracy == pytest.approx(second.points[0].accuracy)
