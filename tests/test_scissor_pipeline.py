"""Integration tests for the end-to-end Group Scissor pipeline."""

import numpy as np
import pytest

from repro.core import GroupDeletionConfig, GroupScissor, RankClippingConfig, ScissorConfig
from repro.hardware import CrossbarLibrary, NetworkMapper, TechnologyParameters
from repro.models import build_mlp


@pytest.fixture
def small_mapper():
    tech = TechnologyParameters(max_crossbar_rows=8, max_crossbar_cols=8)
    return NetworkMapper(technology=tech, library=CrossbarLibrary(technology=tech))


class TestGroupScissorPipeline:
    def test_full_pipeline_on_mlp(self, blob_data, mlp_trainer_factory, small_mapper):
        dense = build_mlp(20, [24, 16], 4, rng=10)
        trainer = mlp_trainer_factory(dense)
        trainer.run(150)
        baseline_accuracy = trainer.evaluate()
        assert baseline_accuracy > 0.9

        config = ScissorConfig(
            rank_clipping=RankClippingConfig(
                tolerance=0.05, clip_interval=20, max_iterations=100
            ),
            group_deletion=GroupDeletionConfig(
                strength=0.05,
                iterations=120,
                finetune_iterations=80,
                include_small_matrices=True,
            ),
        )
        scissor = GroupScissor(config, mlp_trainer_factory, mapper=small_mapper)
        result = scissor.run(dense, baseline_accuracy=baseline_accuracy)

        # Step 1 shrinks the crossbar area (paper headline metric 1).
        assert result.crossbar_area_fraction < 1.0
        assert result.rank_clipping.final_ranks
        assert all(rank >= 1 for rank in result.rank_clipping.final_ranks.values())

        # Step 2 deletes routing wires (paper headline metric 2).
        assert result.group_deletion.mean_wire_fraction() < 1.0
        assert result.mean_routing_area_fraction() <= result.group_deletion.mean_wire_fraction()

        # Accuracy is retained within a small margin on this easy dataset.
        assert result.final_accuracy >= baseline_accuracy - 0.1

        # The reports are consistent: baseline >= clipped >= final crossbar area
        # is not guaranteed in general (deletion does not change area), but
        # clipped area must be below the dense baseline.
        assert (
            result.clipped_report.total_crossbar_area_f2
            < result.baseline_report.total_crossbar_area_f2
        )
        assert result.final_report.total_crossbar_area_f2 == pytest.approx(
            result.clipped_report.total_crossbar_area_f2
        )

        # Human-readable summary mentions the key quantities.
        summary = result.format_summary()
        assert "crossbar area fraction" in summary
        assert "mean routing area" in summary
        assert result.wire_fractions()

    def test_pipeline_respects_excluded_layers(self, mlp_trainer_factory, small_mapper):
        dense = build_mlp(20, [24, 16], 4, rng=11)
        mlp_trainer_factory(dense).run(60)
        config = ScissorConfig(
            rank_clipping=RankClippingConfig(tolerance=0.1, clip_interval=10, max_iterations=30),
            group_deletion=GroupDeletionConfig(
                strength=0.05, iterations=40, finetune_iterations=20,
                include_small_matrices=True,
            ),
            exclude_layers=("fc2",),
        )
        scissor = GroupScissor(config, mlp_trainer_factory, mapper=small_mapper)
        result = scissor.run(dense)
        # fc2 was excluded from clipping: it must not appear in the final ranks.
        assert set(result.rank_clipping.final_ranks) == {"fc1"}

    def test_final_network_is_functional(self, blob_data, mlp_trainer_factory, small_mapper):
        train, test = blob_data
        dense = build_mlp(20, [24], 4, rng=12)
        mlp_trainer_factory(dense).run(100)
        config = ScissorConfig(
            rank_clipping=RankClippingConfig(tolerance=0.05, clip_interval=20, max_iterations=60),
            group_deletion=GroupDeletionConfig(
                strength=0.03, iterations=60, finetune_iterations=40,
                include_small_matrices=True,
            ),
        )
        result = GroupScissor(config, mlp_trainer_factory, mapper=small_mapper).run(dense)
        logits = result.final_network.predict(test.inputs)
        assert logits.shape == (len(test), 4)
        assert np.all(np.isfinite(logits))
