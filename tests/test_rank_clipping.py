"""Tests for rank clipping (Algorithm 2)."""

import numpy as np
import pytest

from repro.core import (
    RankClipper,
    RankClippingCallback,
    RankClippingConfig,
    clip_layer_rank,
    convert_to_lowrank,
)
from repro.exceptions import ConfigurationError
from repro.lowrank import LowRankApproximator
from repro.models import build_mlp
from repro.nn import Linear, LowRankLinear
from repro.nn.layers import LowRankConv2D


def make_lowrank_layer(n=10, m=16, true_rank=3, noise=0.0, seed=0):
    """A LowRankLinear whose dense weight has (approximately) rank ``true_rank``."""
    rng = np.random.default_rng(seed)
    weight = rng.normal(size=(n, true_rank)) @ rng.normal(size=(true_rank, m))
    if noise:
        weight = weight + noise * rng.normal(size=(n, m))
    return LowRankLinear.from_dense(weight, None, name="fc")


class TestClipLayerRank:
    def test_clips_to_intrinsic_rank(self):
        layer = make_lowrank_layer(true_rank=3)
        before = layer.effective_weight()
        new_rank = clip_layer_rank(layer, tolerance=1e-9)
        assert new_rank == 3
        assert layer.rank == 3
        # A (near) zero-tolerance clip preserves the effective weight.
        assert np.allclose(layer.effective_weight(), before, atol=1e-8)

    def test_tolerance_controls_aggressiveness(self):
        gentle = make_lowrank_layer(true_rank=8, noise=0.05, seed=1)
        aggressive = make_lowrank_layer(true_rank=8, noise=0.05, seed=1)
        clip_layer_rank(gentle, tolerance=0.001)
        clip_layer_rank(aggressive, tolerance=0.5)
        assert aggressive.rank <= gentle.rank

    def test_reconstruction_error_within_tolerance(self):
        layer = make_lowrank_layer(true_rank=10, noise=0.3, seed=2)
        before = layer.effective_weight()
        tolerance = 0.05
        clip_layer_rank(layer, tolerance=tolerance)
        after = layer.effective_weight()
        relative = np.linalg.norm(before - after) ** 2 / np.linalg.norm(before) ** 2
        assert relative <= tolerance + 1e-9

    def test_never_clips_below_min_rank(self):
        layer = make_lowrank_layer(true_rank=1, seed=3)
        clip_layer_rank(layer, tolerance=0.9, min_rank=2)
        assert layer.rank >= 2

    def test_no_clip_when_already_minimal(self):
        layer = make_lowrank_layer(true_rank=3, seed=4)
        clip_layer_rank(layer, tolerance=1e-9)
        rank_before = layer.rank
        assert clip_layer_rank(layer, tolerance=1e-9) == rank_before

    def test_svd_backend(self):
        layer = make_lowrank_layer(true_rank=4, seed=5)
        approximator = LowRankApproximator("svd")
        assert clip_layer_rank(layer, 1e-9, approximator=approximator) == 4

    def test_rejects_dense_layer(self):
        with pytest.raises(ConfigurationError):
            clip_layer_rank(Linear(4, 4, rng=0), 0.1)

    def test_works_on_lowrank_conv(self):
        layer = LowRankConv2D(2, 6, 3, rng=0)
        # He-initialized random factors are full rank; a huge tolerance clips hard.
        clip_layer_rank(layer, tolerance=0.9)
        assert layer.rank < 6


class TestRankClippingCallback:
    def test_requires_lowrank_layers(self):
        with pytest.raises(ConfigurationError):
            RankClippingCallback([], RankClippingConfig())
        with pytest.raises(ConfigurationError):
            RankClippingCallback([Linear(4, 4, rng=0)], RankClippingConfig())

    def test_trace_records_full_ranks(self):
        layer = make_lowrank_layer()
        callback = RankClippingCallback([layer], RankClippingConfig())
        assert callback.trace.full_ranks == {"fc": layer.rank}


class TestRankClipper:
    def test_select_layers_respects_config(self, mlp_trainer_factory):
        net = convert_to_lowrank(build_mlp(20, [16, 12], 4, rng=0))
        clipper = RankClipper(RankClippingConfig(layers=("fc1",)))
        assert [l.name for l in clipper.select_layers(net)] == ["fc1"]
        bad = RankClipper(RankClippingConfig(layers=("missing",)))
        with pytest.raises(ConfigurationError):
            bad.select_layers(net)

    def test_select_layers_requires_lowrank_network(self):
        clipper = RankClipper(RankClippingConfig())
        with pytest.raises(ConfigurationError):
            clipper.select_layers(build_mlp(20, [16], 4, rng=0))

    def test_end_to_end_reduces_ranks_and_keeps_accuracy(self, blob_data, mlp_trainer_factory):
        train, test = blob_data
        # Train a dense baseline first.
        dense = build_mlp(20, [24, 16], 4, rng=5)
        trainer = mlp_trainer_factory(dense)
        trainer.run(150)
        baseline_accuracy = trainer.evaluate()
        assert baseline_accuracy > 0.9

        lowrank = convert_to_lowrank(dense)
        full_ranks = {l.name: l.rank for l in lowrank if isinstance(l, LowRankLinear)}
        config = RankClippingConfig(tolerance=0.05, clip_interval=20, max_iterations=120)
        result = RankClipper(config).run(
            lowrank, mlp_trainer_factory, baseline_accuracy=baseline_accuracy
        )
        assert set(result.final_ranks) == {"fc1", "fc2"}
        # Ranks must be reduced relative to the full-rank start.
        assert any(result.final_ranks[n] < full_ranks[n] for n in full_ranks)
        # And accuracy must be retained (the paper's central claim).
        assert result.final_accuracy >= baseline_accuracy - 0.05
        assert result.accuracy_drop() <= 0.05

    def test_trace_monotone_ranks(self, mlp_trainer_factory, blob_data):
        dense = build_mlp(20, [24], 4, rng=6)
        mlp_trainer_factory(dense).run(80)
        lowrank = convert_to_lowrank(dense)
        config = RankClippingConfig(tolerance=0.05, clip_interval=10, max_iterations=60)
        result = RankClipper(config).run(lowrank, mlp_trainer_factory)
        series = result.trace.ranks["fc1"]
        assert all(a >= b for a, b in zip(series, series[1:]))
        ratios = result.trace.rank_ratio("fc1")
        assert ratios[0] == pytest.approx(1.0)
        assert all(0 < r <= 1 for r in ratios)

    def test_trace_serializable(self, mlp_trainer_factory):
        dense = build_mlp(20, [16], 4, rng=7)
        lowrank = convert_to_lowrank(dense)
        config = RankClippingConfig(tolerance=0.1, clip_interval=10, max_iterations=20)
        result = RankClipper(config).run(lowrank, mlp_trainer_factory)
        payload = result.trace.as_dict()
        assert set(payload) == {"iterations", "ranks", "accuracy", "full_ranks"}
        assert result.trace.final_ranks() == result.final_ranks
        with pytest.raises(KeyError):
            result.trace.rank_ratio("unknown")
