"""Tests for the hardware-inference serving runtime (`repro.serving`).

Covers the acceptance contract of the subsystem: the end-to-end chaos drill
(deterministic ``serve-infer`` faults → typed rejections instead of
unbounded queueing → breaker trips → flagged degraded responses → recovery
to ``healthy`` after the cool-down → clean drain — all deadlines honored,
zero requests silently dropped), plus unit coverage of the circuit breaker,
the single-flight programmed-network cache, drift re-programming, admission
control, and shutdown semantics.
"""

import threading
import time

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.hardware import (
    CrossbarLibrary,
    HardwareConfig,
    NetworkMapper,
    TechnologyParameters,
    network_fingerprint,
)
from repro.models import build_mlp
from repro.serving import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    DeadlineRejection,
    DrainingRejection,
    ProgrammedNetworkCache,
    QueueFullRejection,
    Rejection,
    ServingConfig,
    ServingError,
    ServingRuntime,
)
from repro.utils import faultinject
from repro.utils.faultinject import InjectedFault

NOISY = HardwareConfig(bits=6, program_noise=0.02, fault_rate=0.001, adc_bits=8, seed=0)


def tiny_mapper(limit=32):
    technology = TechnologyParameters(max_crossbar_rows=limit, max_crossbar_cols=limit)
    return NetworkMapper(technology=technology, library=CrossbarLibrary(technology=technology))


def mlp(seed=0):
    return build_mlp(16, [24], 4, rng=seed, name=f"serve{seed}")


def inputs(samples=8, seed=0):
    return np.random.default_rng(seed).standard_normal((samples, 16))


def drill_config(**overrides):
    """Single worker + single-sample batches: deterministic dispatch indices."""
    base = dict(
        max_queue=16,
        max_batch=1,
        batch_window_s=0.0,
        workers=1,
        default_deadline_s=5.0,
        breaker_threshold=2,
        breaker_cooldown_s=0.2,
    )
    base.update(overrides)
    return ServingConfig(**base)


def accounted(stats):
    rejected = sum(v for k, v in stats.items() if str(k).startswith("rejected."))
    return stats["completed"] + rejected


# ------------------------------------------------------------- happy path
class TestServingBasics:
    def test_roundtrip_matches_direct_predict(self):
        runtime = ServingRuntime(drill_config(), mapper=tiny_mapper())
        try:
            runtime.register("m", mlp(), corner=NOISY, warm=True)
            x = inputs(4)
            direct = runtime.cache.get(mlp(), NOISY).predict(x)
            handles = [runtime.submit("m", x[i]) for i in range(4)]
            for slot, handle in enumerate(handles):
                response = handle.result(timeout=10.0)
                assert response.prediction == int(np.argmax(direct[slot]))
                assert not response.degraded
                assert response.corner == NOISY.label
                assert handle.done()
        finally:
            runtime.close(drain=True)
        stats = runtime.stats()
        assert stats["completed"] == 4
        assert accounted(stats) == stats["submitted"] == 4

    def test_micro_batching_coalesces(self):
        config = ServingConfig(workers=1, max_batch=8, batch_window_s=0.05, max_queue=32)
        runtime = ServingRuntime(config, mapper=tiny_mapper())
        try:
            runtime.register("m", mlp(), corner=HardwareConfig.ideal(), warm=True)
            x = inputs(6)
            handles = [runtime.submit("m", x[i]) for i in range(6)]
            sizes = {h.result(timeout=10.0).batch_size for h in handles}
            # At least one dispatched batch held several coalesced requests.
            assert max(sizes) > 1
        finally:
            runtime.close(drain=True)

    def test_unregistered_network_rejected(self):
        runtime = ServingRuntime(drill_config(), mapper=tiny_mapper())
        try:
            with pytest.raises(ServingError, match="unregistered"):
                runtime.submit("nope", inputs(1)[0])
        finally:
            runtime.close(drain=True)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ServingConfig(max_queue=0)
        with pytest.raises(ConfigurationError):
            ServingConfig(default_deadline_s=0.0)
        with pytest.raises(ConfigurationError):
            ServingConfig(reprogram_after=0)


# -------------------------------------------------------- acceptance drill
class TestChaosDrill:
    def test_end_to_end_fault_degrade_recover_drain(self):
        """The PR's acceptance criterion, as one deterministic drill.

        Faults at serve-infer dispatch indices 0 and 1 with threshold 2:
        both are absorbed degraded, the second trips the breaker; traffic
        while open rides the flagged ideal-corner fallback without touching
        the primary; the half-open probe (dispatch 2) recovers to healthy;
        the drain is clean.  Throughout: every response lands within its
        deadline budget and every submission is accounted for.
        """
        cooldown = 0.2
        runtime = ServingRuntime(
            drill_config(breaker_cooldown_s=cooldown), mapper=tiny_mapper()
        )
        x = inputs(8)
        deadline_s = 5.0
        responses = []
        try:
            runtime.register("m", mlp(), corner=NOISY, warm=True)
            assert runtime.state() == "healthy"
            faults = [
                {"site": "serve-infer", "kind": "raise", "index": 0},
                {"site": "serve-infer", "kind": "raise", "index": 1},
            ]
            with faultinject.injected(faults):
                # Phase 1: two faulted dispatches — absorbed by the fallback,
                # flagged degraded, breaker trips on the second.
                for i in range(2):
                    response = runtime.infer("m", x[i], deadline_s=deadline_s)
                    responses.append(response)
                    assert response.degraded
                    assert response.corner == "ideal"
                assert runtime.state() == "degraded"
                breaker = next(iter(runtime.stats()["breakers"].values()))
                assert breaker["state"] == OPEN
                assert breaker["times_opened"] == 1

                # Phase 2: breaker open — primary path skipped entirely (its
                # dispatch counter must not advance), responses degraded.
                seq_before = runtime._dispatch_seq
                for i in range(3):
                    response = runtime.infer("m", x[i], deadline_s=deadline_s)
                    responses.append(response)
                    assert response.degraded
                assert runtime._dispatch_seq == seq_before
                assert runtime.state() == "degraded"

                # Phase 3: cool-down elapses; the half-open probe (dispatch
                # index 2, unfaulted) restores the primary.
                time.sleep(cooldown + 0.05)
                probe = runtime.infer("m", x[0], deadline_s=deadline_s)
                responses.append(probe)
                assert not probe.degraded
                assert probe.corner == NOISY.label
                assert runtime.state() == "healthy"
                breaker = next(iter(runtime.stats()["breakers"].values()))
                assert breaker["state"] == CLOSED
                assert breaker["times_closed"] == 1

            # Deadline contract: no response was delivered past its budget.
            for response in responses:
                assert response.latency_s <= deadline_s

            runtime.close(drain=True)
            assert runtime.state() == "stopped"
        finally:
            runtime.close(drain=True)
        stats = runtime.stats()
        assert stats["submitted"] == len(responses) == 6
        assert stats["completed"] == 6
        assert stats["degraded"] == 5
        assert stats["primary_faults"] == 2
        assert accounted(stats) == stats["submitted"]

    def test_shedding_typed_rejections_not_unbounded_queueing(self):
        """A stalled dispatch fills the bounded queue: overflow is shed with
        QueueFullRejection at submit, the state reports ``shedding``, and
        every admitted request still resolves — nothing queues unboundedly,
        nothing is dropped silently."""
        runtime = ServingRuntime(
            drill_config(max_queue=2, default_deadline_s=10.0), mapper=tiny_mapper()
        )
        x = inputs(16)
        try:
            runtime.register("m", mlp(), corner=NOISY, warm=True)
            handles = []
            shed = 0
            with faultinject.injected(
                [{"site": "serve-infer", "kind": "hang", "index": 0, "seconds": 0.4}]
            ):
                for i in range(10):
                    try:
                        handles.append(runtime.submit("m", x[i]))
                    except QueueFullRejection:
                        shed += 1
            assert shed > 0, "the bounded queue must shed overflow"
            assert runtime.state() == "shedding"
            for handle in handles:
                handle.result(timeout=15.0)  # admitted requests all resolve
        finally:
            runtime.close(drain=True)
        stats = runtime.stats()
        assert stats["rejected.queue-full"] == shed
        assert accounted(stats) == stats["submitted"] == 10

    def test_expired_in_queue_rejected_before_work_and_never_late(self):
        runtime = ServingRuntime(
            drill_config(max_queue=8), mapper=tiny_mapper()
        )
        x = inputs(4)
        try:
            runtime.register("m", mlp(), corner=NOISY, warm=True)
            with faultinject.injected(
                [{"site": "serve-infer", "kind": "hang", "index": 0, "seconds": 0.4}]
            ):
                first = runtime.submit("m", x[0], deadline_s=5.0)
                # Queued behind the stalled dispatch with a deadline shorter
                # than the stall: must be deadline-rejected, not served late.
                starved = runtime.submit("m", x[1], deadline_s=0.05)
                with pytest.raises(DeadlineRejection):
                    starved.result(timeout=10.0)
                first.result(timeout=10.0)
        finally:
            runtime.close(drain=True)
        stats = runtime.stats()
        assert stats["rejected.deadline"] == 1
        assert accounted(stats) == stats["submitted"]

    def test_infeasible_deadline_rejected_at_admission(self):
        runtime = ServingRuntime(drill_config(), mapper=tiny_mapper())
        x = inputs(4)
        try:
            runtime.register("m", mlp(), corner=NOISY, warm=True)
            for i in range(3):  # establish the service-time EWMA
                runtime.infer("m", x[i])
            with pytest.raises(DeadlineRejection, match="infeasible"):
                runtime.submit("m", x[0], deadline_s=1e-9)
            with pytest.raises(DeadlineRejection):
                runtime.submit("m", x[0], deadline_s=-1.0)
        finally:
            runtime.close(drain=True)


# ------------------------------------------------------------------- drain
class TestShutdown:
    def test_graceful_drain_serves_queued_work(self):
        runtime = ServingRuntime(
            drill_config(max_queue=16, default_deadline_s=10.0), mapper=tiny_mapper()
        )
        x = inputs(8)
        runtime.register("m", mlp(), corner=NOISY, warm=True)
        handles = [runtime.submit("m", x[i]) for i in range(8)]
        runtime.close(drain=True)
        for handle in handles:
            handle.result(timeout=1.0)  # already resolved by the drain
        with pytest.raises(DrainingRejection):
            runtime.submit("m", x[0])
        assert runtime.state() == "stopped"
        assert not runtime.is_ready()
        stats = runtime.stats()
        assert stats["completed"] == 8
        # The post-drain submit was still counted and typed.
        assert accounted(stats) == stats["submitted"] == 9

    def test_non_draining_close_rejects_queued_work(self):
        runtime = ServingRuntime(
            drill_config(max_queue=16, default_deadline_s=10.0), mapper=tiny_mapper()
        )
        x = inputs(8)
        runtime.register("m", mlp(), corner=NOISY, warm=True)
        with faultinject.injected(
            [{"site": "serve-infer", "kind": "hang", "index": 0, "seconds": 0.3}]
        ):
            handles = [runtime.submit("m", x[i]) for i in range(6)]
            runtime.close(drain=False)
        outcomes = {"served": 0, "rejected": 0}
        for handle in handles:
            try:
                handle.result(timeout=10.0)
                outcomes["served"] += 1
            except DrainingRejection:
                outcomes["rejected"] += 1
        # The stalled in-flight request finishes; the queued remainder is
        # typed-rejected — either way, every handle resolves.
        assert outcomes["served"] + outcomes["rejected"] == 6
        assert outcomes["rejected"] > 0
        assert accounted(runtime.stats()) == runtime.stats()["submitted"]

    def test_close_is_idempotent_and_register_refused_after(self):
        runtime = ServingRuntime(drill_config(), mapper=tiny_mapper())
        runtime.close(drain=True)
        runtime.close(drain=True)
        with pytest.raises(ServingError):
            runtime.register("m", mlp())


# ----------------------------------------------------------------- breaker
class TestCircuitBreaker:
    def test_threshold_and_cooldown_cycle(self):
        clock = [0.0]
        breaker = CircuitBreaker(threshold=3, cooldown_s=10.0, clock=lambda: clock[0])
        assert breaker.state == CLOSED
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        clock[0] = 10.0
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # the single probe
        assert not breaker.allow()  # everyone else still shed
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.stats()["times_opened"] == 1
        assert breaker.stats()["times_closed"] == 1

    def test_failed_probe_reopens(self):
        clock = [0.0]
        breaker = CircuitBreaker(threshold=1, cooldown_s=5.0, clock=lambda: clock[0])
        breaker.record_failure()
        clock[0] = 5.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock[0] = 9.0  # cool-down restarted at t=5
        assert breaker.state == OPEN
        clock[0] = 10.0
        assert breaker.state == HALF_OPEN

    def test_abandoned_probe_frees_the_slot(self):
        clock = [0.0]
        breaker = CircuitBreaker(threshold=1, cooldown_s=1.0, clock=lambda: clock[0])
        breaker.record_failure()
        clock[0] = 1.0
        assert breaker.allow()
        breaker.abandon_probe()  # probe never reached the device
        assert breaker.allow()  # the next caller may probe instead
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2, cooldown_s=1.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED  # never two *consecutive* failures

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(cooldown_s=-1.0)


# ------------------------------------------------------------------- cache
class TestProgrammedNetworkCache:
    def test_hit_and_miss_accounting(self):
        cache = ProgrammedNetworkCache(maxsize=4, mapper=tiny_mapper())
        network = mlp()
        first = cache.get(network, NOISY)
        again = cache.get(network, NOISY)
        assert first is again
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hits"] == 1
        # A different corner of the same weights is a separate entry.
        cache.get(network, HardwareConfig.ideal())
        assert cache.stats()["misses"] == 2
        assert len(cache) == 2

    def test_single_flight_concurrent_misses_program_once(self):
        cache = ProgrammedNetworkCache(maxsize=4, mapper=tiny_mapper())
        network = mlp()
        fingerprint = network_fingerprint(network)
        results = []
        barrier = threading.Barrier(4)

        def worker():
            barrier.wait(timeout=10.0)
            results.append(
                cache.get(network, NOISY, fingerprint=fingerprint, timeout=30.0)
            )

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert len(results) == 4
        assert all(result is results[0] for result in results)
        assert cache.stats()["programs"] == 1

    def test_failed_leader_releases_the_key(self):
        cache = ProgrammedNetworkCache(maxsize=4, mapper=tiny_mapper())
        network = mlp()
        with faultinject.injected(
            [{"site": "serve-program", "kind": "raise", "index": 0}]
        ):
            with pytest.raises(InjectedFault):
                cache.get(network, NOISY)
            # The key is not wedged: the next caller retries leadership.
            programmed = cache.get(network, NOISY)
        assert programmed.predict(inputs(2)).shape == (2, 4)
        assert cache.stats()["programs"] == 2

    def test_drift_reprogram_is_bit_identical(self):
        cache = ProgrammedNetworkCache(
            maxsize=4, reprogram_after=4, mapper=tiny_mapper()
        )
        network = mlp()
        x = inputs(4)
        first = cache.get(network, NOISY, samples=4)
        baseline = first.predict(x)
        refreshed = cache.get(network, NOISY, samples=1)
        assert refreshed is not first
        assert cache.stats()["reprograms"] == 1
        # Programming is a pure function of (fingerprint, config): the
        # refreshed entry realises bit-identical device state.
        np.testing.assert_array_equal(refreshed.predict(x), baseline)
        assert refreshed.stuck_cells() == first.stuck_cells()

    def test_lru_eviction_bounds_size(self):
        cache = ProgrammedNetworkCache(maxsize=1, mapper=tiny_mapper())
        network = mlp()
        cache.get(network, NOISY)
        cache.get(network, HardwareConfig.ideal())
        assert len(cache) == 1
        assert cache.stats()["evictions"] == 1

    def test_follower_wait_honors_timeout(self):
        cache = ProgrammedNetworkCache(maxsize=4, mapper=tiny_mapper())
        network = mlp()
        fingerprint = network_fingerprint(network)
        started = threading.Event()

        def slow_leader():
            with faultinject.injected(
                [{"site": "serve-program", "kind": "hang", "index": 0, "seconds": 0.5}]
            ):
                started.set()
                cache.get(network, NOISY, fingerprint=fingerprint)

        leader = threading.Thread(target=slow_leader)
        leader.start()
        assert started.wait(timeout=5.0)
        time.sleep(0.05)  # let the leader claim the in-flight slot
        with pytest.raises(DeadlineRejection):
            cache.get(network, NOISY, fingerprint=fingerprint, timeout=0.05)
        leader.join(timeout=10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ProgrammedNetworkCache(maxsize=0)
        with pytest.raises(ValueError):
            ProgrammedNetworkCache(reprogram_after=0)


# -------------------------------------------------------- runtime reprogram
class TestRuntimeDriftIntegration:
    def test_runtime_reprograms_and_answers_identically(self):
        config = drill_config(reprogram_after=2, default_deadline_s=10.0)
        runtime = ServingRuntime(config, mapper=tiny_mapper())
        x = inputs(1)[0]
        try:
            runtime.register("m", mlp(), corner=NOISY, warm=True)
            first = [runtime.infer("m", x) for _ in range(2)]
            # The drift counter hits reprogram_after=2: the next request
            # re-programs; determinism makes the answer identical.
            later = runtime.infer("m", x)
            assert runtime.cache.stats()["reprograms"] >= 1
            assert later.prediction == first[0].prediction
            np.testing.assert_array_equal(later.logits, first[0].logits)
        finally:
            runtime.close(drain=True)
