"""Tests for the device-level crossbar simulator (`repro.hardware.sim`).

Covers the acceptance guards of the subsystem: ideal-device parity with
``Sequential.predict`` (1e-9 logits tolerance), bit-reproducibility of
non-ideal runs under ``HardwareConfig.seed`` across the serial and batched
paths, agreement of the vectorized blocked MVM with the naive per-tile
reference (padded plans included), and the physics of each non-ideality
(quantization, programming/read noise, stuck faults, per-tile ADC).
"""

import numpy as np
import pytest

from repro.core.conversion import convert_to_lowrank
from repro.exceptions import ConfigurationError, ShapeError
from repro.hardware import (
    CrossbarLibrary,
    HardwareConfig,
    NetworkMapper,
    TechnologyParameters,
    network_fingerprint,
    plan_tiling,
    program_matrix,
    program_network,
    simulate_evaluate,
    simulate_mvm,
    simulate_predict,
    stacked_simulate_predict,
)
from repro.nn import Conv2D, Flatten, Linear, MaxPool2D, ReLU, Sequential

NOISY = HardwareConfig(
    bits=6, program_noise=0.03, read_noise=0.01, fault_rate=0.002, adc_bits=8, seed=3
)


def tiny_mapper(limit=16):
    technology = TechnologyParameters(max_crossbar_rows=limit, max_crossbar_cols=limit)
    return NetworkMapper(technology=technology, library=CrossbarLibrary(technology=technology))


def conv_net(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        [
            Conv2D(2, 6, 3, name="conv1", rng=rng),
            ReLU(name="r1"),
            MaxPool2D(2, name="p1"),
            Flatten(name="f1"),
            Linear(6 * 5 * 5, 10, name="fc1", rng=rng),
        ],
        name=f"net{seed}",
    )


def lowrank_net(seed=0):
    return convert_to_lowrank(conv_net(seed), layers=["conv1", "fc1"])


@pytest.fixture
def images(rng):
    return rng.standard_normal((12, 2, 12, 12))


# ---------------------------------------------------------------- config
class TestHardwareConfig:
    def test_ideal_flags_and_label(self):
        config = HardwareConfig.ideal()
        assert config.is_ideal
        assert config.label == "ideal"
        assert not NOISY.is_ideal
        assert NOISY.label == "b6-pn0.03-rn0.01-f0.002-adc8-s3"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HardwareConfig(bits=0)
        with pytest.raises(ConfigurationError):
            HardwareConfig(adc_bits=64)
        with pytest.raises(ConfigurationError):
            HardwareConfig(program_noise=-0.1)
        with pytest.raises(ConfigurationError):
            HardwareConfig(fault_rate=1.5)
        with pytest.raises(ConfigurationError):
            HardwareConfig(stuck_on_fraction=-0.1)

    def test_dict_round_trip(self):
        rebuilt = HardwareConfig.from_dict(NOISY.as_dict())
        assert rebuilt == NOISY
        with pytest.raises(ConfigurationError):
            HardwareConfig.from_dict({"bits": 4, "volts": 1.2})

    def test_numeric_strings_coerce_and_junk_fails_typed(self):
        # Hand-written JSON may quote numbers; junk must raise the typed
        # error (not a bare TypeError) so the CLI reports it cleanly.
        assert HardwareConfig.from_dict({"program_noise": "0.1"}).program_noise == 0.1
        with pytest.raises(ConfigurationError):
            HardwareConfig.from_dict({"program_noise": "lots"})
        with pytest.raises(ConfigurationError):
            HardwareConfig.from_dict({"fault_rate": float("nan")})

    def test_labels_distinguish_corners(self):
        corners = [
            HardwareConfig.ideal(),
            HardwareConfig(bits=4),
            HardwareConfig(bits=4, seed=1),
            HardwareConfig(bits=4, adc_bits=4),
            HardwareConfig(fault_rate=0.01),
            HardwareConfig(fault_rate=0.01, stuck_on_fraction=1.0),
        ]
        labels = [config.label for config in corners]
        assert len(set(labels)) == len(labels)


# --------------------------------------------------------- ideal parity
class TestIdealParity:
    @pytest.mark.parametrize("mapper", [None, "tiny"])
    def test_conv_net(self, images, mapper):
        network = conv_net(0)
        mapper = tiny_mapper() if mapper else None
        sim = simulate_predict(network, images, HardwareConfig.ideal(), mapper=mapper)
        np.testing.assert_allclose(sim, network.predict(images), rtol=0, atol=1e-9)

    def test_lowrank_net(self, images):
        network = lowrank_net(1)
        sim = simulate_predict(network, images, HardwareConfig.ideal(), mapper=tiny_mapper())
        np.testing.assert_allclose(sim, network.predict(images), rtol=0, atol=1e-9)

    def test_training_flags_restored(self, images):
        network = conv_net(0).train()
        simulate_predict(network, images, HardwareConfig.ideal())
        assert all(layer.training for layer in network)

    def test_dense_multi_tile(self, rng):
        network = Sequential([Linear(48, 32, rng=0, name="fc")], name="dense")
        x = rng.standard_normal((20, 48))
        sim = simulate_predict(network, x, HardwareConfig.ideal(), mapper=tiny_mapper(8))
        np.testing.assert_allclose(sim, network.predict(x), rtol=0, atol=1e-9)


# ------------------------------------------------------------ determinism
class TestDeterminism:
    def test_bit_reproducible_given_seed(self, images):
        network = lowrank_net(0)
        mapper = tiny_mapper()
        first = simulate_predict(network, images, NOISY, mapper=mapper)
        second = simulate_predict(network, images, NOISY, mapper=mapper)
        np.testing.assert_array_equal(first, second)

    def test_seed_changes_noise(self, images):
        network = lowrank_net(0)
        other = HardwareConfig.from_dict({**NOISY.as_dict(), "seed": 4})
        first = simulate_predict(network, images, NOISY)
        second = simulate_predict(network, images, other)
        assert np.abs(first - second).max() > 0

    def test_program_and_read_noise_use_distinct_streams(self):
        values = np.random.default_rng(0).standard_normal((16, 16))
        plan = plan_tiling(16, 16, name="m")
        programmed = program_matrix(values, plan, HardwareConfig(program_noise=0.05))
        read = program_matrix(values, plan, HardwareConfig(read_noise=0.05))
        assert np.abs(programmed.weights - read.weights).max() > 0

    def test_fault_placement_independent_of_noise_flags(self):
        values = np.random.default_rng(0).standard_normal((16, 16))
        plan = plan_tiling(16, 16, name="m")
        quiet = program_matrix(values, plan, HardwareConfig(fault_rate=0.3))
        noisy = program_matrix(
            values, plan, HardwareConfig(fault_rate=0.3, program_noise=0.01)
        )
        assert (quiet.stuck_on, quiet.stuck_off) == (noisy.stuck_on, noisy.stuck_off)


# ------------------------------------------------------- serial vs batched
class TestBatchedParity:
    def test_stacked_matches_serial_bitwise(self, images):
        networks = [lowrank_net(seed) for seed in range(3)]
        mapper = tiny_mapper()
        stacked = stacked_simulate_predict(networks, images, NOISY, mapper=mapper)
        for slot, network in enumerate(networks):
            serial = simulate_predict(network, images, NOISY, mapper=mapper)
            np.testing.assert_array_equal(stacked[slot], serial)

    def test_stacked_dense_ideal(self, rng):
        networks = [
            Sequential([Linear(48, 10, rng=seed, name="fc")], name=f"d{seed}")
            for seed in range(2)
        ]
        x = rng.standard_normal((8, 48))
        stacked = stacked_simulate_predict(
            networks, x, HardwareConfig.ideal(), mapper=tiny_mapper(8)
        )
        for slot, network in enumerate(networks):
            np.testing.assert_allclose(
                stacked[slot], network.predict(x), rtol=0, atol=1e-9
            )

    def test_rejects_mixed_architectures(self, images):
        with pytest.raises(ShapeError):
            stacked_simulate_predict([conv_net(0), lowrank_net(1)], images, NOISY)

    def test_simulate_evaluate_groups_and_orders(self, images, rng):
        targets = rng.integers(0, 10, images.shape[0])
        networks = [lowrank_net(0), conv_net(5), lowrank_net(1)]
        mapper = tiny_mapper()
        batched = simulate_evaluate(networks, images, targets, NOISY, mapper=mapper)
        from repro.nn.metrics import accuracy

        serial = [
            accuracy(simulate_predict(network, images, NOISY, mapper=mapper), targets)
            for network in networks
        ]
        assert batched == serial


# -------------------------------------------------- vectorized vs reference
class TestReferencePath:
    def test_blocked_matches_tile_loop(self, images):
        network = lowrank_net(0)
        mapper = tiny_mapper()
        fast = simulate_predict(network, images, NOISY, mapper=mapper)
        slow = simulate_predict(network, images, NOISY, mapper=mapper, reference=True)
        np.testing.assert_allclose(slow, fast, rtol=1e-9, atol=1e-12)

    def test_padded_plan_falls_back(self, rng):
        from repro.hardware.mapper import extract_crossbar_matrices

        # 67 is prime: no divisor fits a 16-wide crossbar, so the plan pads.
        network = Sequential([Linear(67, 10, rng=0, name="fc")], name="padded")
        mapper = tiny_mapper()
        plan = mapper.plan_matrix(extract_crossbar_matrices(network)[0])
        assert plan.padded
        x = rng.standard_normal((9, 67))
        fast = simulate_predict(network, x, NOISY, mapper=mapper)
        slow = simulate_predict(network, x, NOISY, mapper=mapper, reference=True)
        np.testing.assert_array_equal(fast, slow)
        ideal = simulate_predict(network, x, HardwareConfig.ideal(), mapper=mapper)
        np.testing.assert_allclose(ideal, network.predict(x), rtol=0, atol=1e-9)
        stacked = stacked_simulate_predict([network, network], x, NOISY, mapper=mapper)
        np.testing.assert_array_equal(stacked[0], fast)


# ----------------------------------------------------------- non-idealities
class TestNonIdealities:
    def test_quantization_error_shrinks_with_bits(self, rng):
        values = rng.standard_normal((32, 32))
        plan = plan_tiling(32, 32, name="m")

        def error(bits):
            programmed = program_matrix(values, plan, HardwareConfig(bits=bits))
            return np.abs(programmed.weights - values).max()

        assert error(8) < error(4) < error(2)
        ideal = program_matrix(values, plan, HardwareConfig.ideal())
        assert np.abs(ideal.weights - values).max() < 1e-12

    def test_all_stuck_off_zeroes_the_matrix(self, rng):
        values = rng.standard_normal((16, 16))
        plan = plan_tiling(16, 16, name="m")
        programmed = program_matrix(
            values, plan, HardwareConfig(fault_rate=1.0, stuck_on_fraction=0.0)
        )
        assert programmed.stuck_off == 2 * values.size
        np.testing.assert_array_equal(programmed.weights, np.zeros_like(values))

    def test_all_stuck_on_cancels_differentially(self, rng):
        values = rng.standard_normal((16, 16))
        plan = plan_tiling(16, 16, name="m")
        programmed = program_matrix(
            values, plan, HardwareConfig(fault_rate=1.0, stuck_on_fraction=1.0)
        )
        assert programmed.stuck_on == 2 * values.size
        np.testing.assert_allclose(programmed.weights, 0.0, atol=1e-12)

    def test_fault_counts_track_rate(self, rng):
        values = rng.standard_normal((64, 64))
        plan = plan_tiling(64, 64, name="m")
        programmed = program_matrix(values, plan, HardwareConfig(fault_rate=0.1))
        total = programmed.stuck_on + programmed.stuck_off
        assert 0.05 * programmed.num_cells < total < 0.15 * programmed.num_cells

    def test_adc_quantizes_currents(self, rng):
        network = conv_net(0)
        x = rng.standard_normal((8, 2, 12, 12))
        mapper = tiny_mapper()
        exact = simulate_predict(network, x, HardwareConfig.ideal(), mapper=mapper)
        fine = simulate_predict(network, x, HardwareConfig(adc_bits=14), mapper=mapper)
        coarse = simulate_predict(network, x, HardwareConfig(adc_bits=2), mapper=mapper)
        np.testing.assert_allclose(fine, exact, rtol=1e-3, atol=1e-3)
        assert np.abs(coarse - exact).max() > np.abs(fine - exact).max()

    def test_simulate_mvm_shape_check(self, rng):
        values = rng.standard_normal((16, 8))
        plan = plan_tiling(16, 8, name="m")
        programmed = program_matrix(values, plan, HardwareConfig.ideal())
        with pytest.raises(ShapeError):
            simulate_mvm(rng.standard_normal((4, 9)), programmed, HardwareConfig.ideal())

    def test_programmed_network_stats(self):
        network = conv_net(0)
        programmed = program_network(
            network, HardwareConfig(fault_rate=0.05), mapper=tiny_mapper()
        )
        assert programmed.total_crossbars() > 1
        stuck_on, stuck_off = programmed.stuck_cells()
        assert stuck_on + stuck_off > 0


# ------------------------------------------------- re-programming determinism
class TestReprogrammingDeterminism:
    """Programming is a pure function of (network content, HardwareConfig).

    The serving layer's drift policy (evict + re-program after T served
    samples) is only a correctness-preserving refresh because a re-program
    restores bit-identical device state: same conductance-effective weights,
    same stuck-cell draws, same predictions.
    """

    def test_reprogram_is_bit_identical(self, images):
        network = lowrank_net(0)
        first = program_network(network, NOISY, mapper=tiny_mapper())
        second = program_network(network, NOISY, mapper=tiny_mapper())
        assert first.stuck_cells() == second.stuck_cells()
        for layer_name, stages in first.stages.items():
            for stage, matrix in stages.items():
                twin = second.stages[layer_name][stage]
                np.testing.assert_array_equal(matrix.weights, twin.weights)
                assert (matrix.stuck_on, matrix.stuck_off) == (
                    twin.stuck_on,
                    twin.stuck_off,
                )
        np.testing.assert_array_equal(first.predict(images), second.predict(images))

    def test_identical_weights_share_a_fingerprint(self):
        assert network_fingerprint(lowrank_net(0)) == network_fingerprint(lowrank_net(0))

    def test_fingerprint_tracks_content(self):
        network = lowrank_net(0)
        baseline = network_fingerprint(network)
        assert baseline != network_fingerprint(lowrank_net(1))
        parameter = network.parameters()[0]
        parameter.data = parameter.data.copy()
        parameter.data.flat[0] += 1e-6
        assert network_fingerprint(network) != baseline

    def test_different_seeds_program_differently(self, images):
        network = lowrank_net(0)
        a = program_network(network, NOISY, mapper=tiny_mapper())
        b = program_network(
            network, HardwareConfig.from_dict({**NOISY.as_dict(), "seed": 4}),
            mapper=tiny_mapper(),
        )
        assert np.abs(a.predict(images) - b.predict(images)).max() > 0
