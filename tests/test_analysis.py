"""Tests of the :mod:`repro.analysis` contract linter.

Each rule gets three fixtures — violating, clean, suppressed — plus unit
tests of the registry, the suppression parser, the reporters, and the
semantic fingerprint-coverage rule (via injected dataclasses).
"""

import json
import textwrap
from dataclasses import dataclass

import pytest

from repro.analysis import (
    all_rules,
    get_rule,
    iter_python_files,
    parse_suppressions,
    render_json,
    render_rule_list,
    render_text,
    run_analysis,
)
from repro.analysis.core import PARSE_ERROR
from repro.analysis.rules.fingerprint import (
    ACKNOWLEDGED_FIELDS,
    EXCLUDED_FIELDS,
    coverage_messages,
)
from repro.hardware.sim import HardwareConfig


def lint(tmp_path, relpath, source, rules=None):
    """Write ``source`` at ``tmp_path/relpath`` and lint it (file rules only)."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return run_analysis(
        [path], root=tmp_path, rules=rules, include_project_rules=False
    )


def rules_hit(report):
    return {finding.rule for finding in report.findings}


class TestRegistry:
    def test_at_least_eight_rules(self):
        assert len(all_rules()) >= 8

    def test_ids_unique_and_kebab_case(self):
        ids = [rule.id for rule in all_rules()]
        assert len(ids) == len(set(ids))
        for rule_id in ids:
            assert rule_id == rule_id.lower()
            assert " " not in rule_id

    def test_every_rule_documents_its_motivation(self):
        for rule in all_rules():
            assert rule.summary, rule.id
            assert rule.rationale, rule.id

    def test_get_rule_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown rule"):
            get_rule("no-such-rule")


class TestSuppressionParsing:
    def test_inline(self):
        table = parse_suppressions("x = 1  # repro: ignore[unseeded-random]\n")
        assert table == {1: {"unseeded-random"}}

    def test_multiple_ids(self):
        table = parse_suppressions("# repro: ignore[dtype-literal, wall-clock]\n")
        assert table == {1: {"dtype-literal", "wall-clock"}}

    def test_justification_text_before_tag(self):
        table = parse_suppressions(
            "# analytical model, deliberately float64.  repro: ignore[dtype-literal]\n"
        )
        assert table == {1: {"dtype-literal"}}

    def test_no_blanket_ignore(self):
        # An empty id list is not a valid suppression: nothing is waived.
        assert parse_suppressions("# repro: ignore[]\n") == {}

    def test_suppression_must_be_adjacent(self, tmp_path):
        report = lint(
            tmp_path,
            "mod.py",
            """\
            import numpy as np

            # repro: ignore[unseeded-random]

            x = np.random.rand(3)
            """,
            rules=["unseeded-random"],
        )
        assert rules_hit(report) == {"unseeded-random"}

    def test_comment_line_above_suppresses(self, tmp_path):
        report = lint(
            tmp_path,
            "mod.py",
            """\
            import numpy as np

            # seeding handled by the caller.  repro: ignore[unseeded-random]
            x = np.random.rand(3)
            """,
            rules=["unseeded-random"],
        )
        assert report.clean
        assert report.suppressed == 1


class TestUnseededRandomRule:
    def test_violations(self, tmp_path):
        report = lint(
            tmp_path,
            "mod.py",
            """\
            import random

            import numpy as np

            a = np.random.rand(3)
            b = np.random.default_rng()
            c = random.random()
            """,
            rules=["unseeded-random"],
        )
        assert len(report.findings) == 3
        assert rules_hit(report) == {"unseeded-random"}

    def test_from_import_violation(self, tmp_path):
        report = lint(
            tmp_path,
            "mod.py",
            """\
            from random import shuffle

            shuffle([1, 2, 3])
            """,
            rules=["unseeded-random"],
        )
        assert len(report.findings) == 1

    def test_clean_seeded_streams(self, tmp_path):
        report = lint(
            tmp_path,
            "mod.py",
            """\
            import numpy as np

            rng = np.random.default_rng(1234)
            x = rng.normal(size=3)
            """,
            rules=["unseeded-random"],
        )
        assert report.clean

    def test_rng_module_is_exempt(self, tmp_path):
        report = lint(
            tmp_path,
            "utils/rng.py",
            """\
            import numpy as np

            state = np.random.RandomState(0)
            """,
            rules=["unseeded-random"],
        )
        assert report.clean

    def test_suppressed(self, tmp_path):
        report = lint(
            tmp_path,
            "mod.py",
            """\
            import numpy as np

            x = np.random.rand(3)  # repro: ignore[unseeded-random]
            """,
            rules=["unseeded-random"],
        )
        assert report.clean
        assert report.suppressed == 1


class TestWallClockRule:
    def test_violations_in_fingerprinted_module(self, tmp_path):
        report = lint(
            tmp_path,
            "experiments/plan.py",
            """\
            import time

            stamp = time.time()
            label = time.strftime("%Y")
            """,
            rules=["wall-clock"],
        )
        assert len(report.findings) == 2

    def test_other_modules_are_out_of_scope(self, tmp_path):
        report = lint(
            tmp_path,
            "experiments/report.py",
            """\
            import time

            stamp = time.time()
            """,
            rules=["wall-clock"],
        )
        assert report.clean

    def test_duration_timing_is_allowed(self, tmp_path):
        report = lint(
            tmp_path,
            "experiments/plan.py",
            """\
            import time

            t0 = time.perf_counter()
            label = time.strftime("%Y", time.gmtime(0))
            """,
            rules=["wall-clock"],
        )
        assert report.clean

    def test_suppressed(self, tmp_path):
        report = lint(
            tmp_path,
            "experiments/plan.py",
            """\
            import time

            # artifact metadata only.  repro: ignore[wall-clock]
            stamp = time.strftime("%Y-%m-%d")
            """,
            rules=["wall-clock"],
        )
        assert report.clean
        assert report.suppressed == 1


class TestDtypeLiteralRule:
    def test_violations(self, tmp_path):
        report = lint(
            tmp_path,
            "mod.py",
            """\
            import numpy as np

            a = np.asarray([1.0], dtype=np.float64)
            b = np.zeros(3, dtype="float32")
            c = np.ones(3, dtype=float)
            """,
            rules=["dtype-literal"],
        )
        assert len(report.findings) == 3

    def test_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "mod.py",
            """\
            import numpy as np

            from repro.nn.dtype import as_float, default_dtype

            a = as_float([1.0])
            b = np.zeros(3, dtype=default_dtype())
            c = np.zeros(3, dtype=np.int64)
            """,
            rules=["dtype-literal"],
        )
        assert report.clean

    def test_policy_module_is_exempt(self, tmp_path):
        report = lint(
            tmp_path,
            "nn/dtype.py",
            """\
            import numpy as np

            DEFAULT = np.float64
            """,
            rules=["dtype-literal"],
        )
        assert report.clean

    def test_suppressed(self, tmp_path):
        report = lint(
            tmp_path,
            "mod.py",
            """\
            import numpy as np

            # deliberately full precision.  repro: ignore[dtype-literal]
            a = np.asarray([1.0], dtype=np.float64)
            """,
            rules=["dtype-literal"],
        )
        assert report.clean
        assert report.suppressed == 1


class TestTransposeContiguityRule:
    def test_violations(self, tmp_path):
        report = lint(
            tmp_path,
            "mod.py",
            """\
            param.data = vt[:k, :].T
            weight.data = matrix.transpose(1, 0)
            """,
            rules=["transpose-contiguity"],
        )
        assert len(report.findings) == 2

    def test_clean_wrapped(self, tmp_path):
        report = lint(
            tmp_path,
            "mod.py",
            """\
            import numpy as np

            param.data = np.ascontiguousarray(vt[:k, :].T)
            weight.data = matrix.T.copy()
            other.data = fresh_array
            """,
            rules=["transpose-contiguity"],
        )
        assert report.clean

    def test_suppressed(self, tmp_path):
        report = lint(
            tmp_path,
            "mod.py",
            """\
            param.data = vt.T  # repro: ignore[transpose-contiguity]
            """,
            rules=["transpose-contiguity"],
        )
        assert report.clean
        assert report.suppressed == 1


class TestBaselineAliasRule:
    def test_positional_violation(self, tmp_path):
        report = lint(
            tmp_path,
            "experiments/sweep.py",
            """\
            def run(baseline):
                return finetune_network(baseline)
            """,
            rules=["baseline-alias"],
        )
        assert len(report.findings) == 1

    def test_closure_keyword_violation(self, tmp_path):
        report = lint(
            tmp_path,
            "experiments/sweep.py",
            """\
            def make_tasks(net, points):
                def build(point):
                    return RankClippingPointTask(network=net, point=point)

                return [build(point) for point in points]
            """,
            rules=["baseline-alias"],
        )
        assert len(report.findings) == 1

    def test_clean_deepcopy(self, tmp_path):
        report = lint(
            tmp_path,
            "experiments/sweep.py",
            """\
            import copy

            def run(baseline):
                return finetune_network(copy.deepcopy(baseline))

            def make_tasks(net, points):
                def build(point):
                    return RankClippingPointTask(
                        network=copy.deepcopy(net), point=point
                    )

                return [build(point) for point in points]
            """,
            rules=["baseline-alias"],
        )
        assert report.clean

    def test_only_applies_to_experiments(self, tmp_path):
        report = lint(
            tmp_path,
            "hardware/sweep.py",
            """\
            def run(baseline):
                return finetune_network(baseline)
            """,
            rules=["baseline-alias"],
        )
        assert report.clean

    def test_suppressed(self, tmp_path):
        report = lint(
            tmp_path,
            "experiments/sweep.py",
            """\
            def run(baseline):
                # read-only evaluation.  repro: ignore[baseline-alias]
                return train_eval(baseline)
            """,
            rules=["baseline-alias"],
        )
        assert report.clean
        assert report.suppressed == 1


class TestPoolPicklableRule:
    def test_lambda_violation(self, tmp_path):
        report = lint(
            tmp_path,
            "mod.py",
            """\
            from concurrent.futures import ProcessPoolExecutor

            def run(tasks):
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(lambda task: task + 1, tasks))
            """,
            rules=["pool-picklable"],
        )
        assert len(report.findings) == 1

    def test_local_def_violation(self, tmp_path):
        report = lint(
            tmp_path,
            "mod.py",
            """\
            from concurrent.futures import ProcessPoolExecutor

            def run(tasks):
                def point(task):
                    return task

                with ProcessPoolExecutor() as pool:
                    return pool.submit(point, tasks[0])
            """,
            rules=["pool-picklable"],
        )
        assert len(report.findings) == 1

    def test_engine_api_violation_without_executor_import(self, tmp_path):
        report = lint(
            tmp_path,
            "mod.py",
            """\
            def run(engine, tasks):
                return engine.map_points(lambda task: task, tasks)
            """,
            rules=["pool-picklable"],
        )
        assert len(report.findings) == 1

    def test_clean_module_level_function(self, tmp_path):
        report = lint(
            tmp_path,
            "mod.py",
            """\
            from concurrent.futures import ProcessPoolExecutor

            def point(task):
                return task

            def run(tasks):
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(point, tasks))
            """,
            rules=["pool-picklable"],
        )
        assert report.clean

    def test_builtin_map_is_not_a_pool(self, tmp_path):
        report = lint(
            tmp_path,
            "mod.py",
            """\
            from concurrent.futures import ProcessPoolExecutor

            def run(items):
                return list(map(lambda item: item, items))
            """,
            rules=["pool-picklable"],
        )
        assert report.clean

    def test_suppressed(self, tmp_path):
        report = lint(
            tmp_path,
            "mod.py",
            """\
            def run(engine, tasks):
                # serial-only engine.  repro: ignore[pool-picklable]
                return engine.map_points(lambda task: task, tasks)
            """,
            rules=["pool-picklable"],
        )
        assert report.clean
        assert report.suppressed == 1


class TestSwallowedExceptionRule:
    """Scoped to engine/store modules: broad handlers must log or re-raise."""

    SCOPE = "src/repro/experiments/engine_mod.py"

    def test_silent_broad_handler_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            self.SCOPE,
            """\
            def load(path):
                try:
                    return open(path).read()
                except Exception:
                    return None
            """,
            rules=["swallowed-exception"],
        )
        assert rules_hit(report) == {"swallowed-exception"}

    def test_bare_except_always_flagged_even_with_logging(self, tmp_path):
        report = lint(
            tmp_path,
            self.SCOPE,
            """\
            import logging

            def load(path):
                try:
                    return open(path).read()
                except:
                    logging.getLogger(__name__).warning("failed")
                    return None
            """,
            rules=["swallowed-exception"],
        )
        assert rules_hit(report) == {"swallowed-exception"}
        assert "KeyboardInterrupt" in report.findings[0].message

    def test_logging_handler_clean(self, tmp_path):
        report = lint(
            tmp_path,
            self.SCOPE,
            """\
            import logging

            logger = logging.getLogger(__name__)

            def load(path):
                try:
                    return open(path).read()
                except Exception as error:
                    logger.warning("load failed: %s", error)
                    return None
            """,
            rules=["swallowed-exception"],
        )
        assert report.clean

    def test_reraising_handler_clean(self, tmp_path):
        report = lint(
            tmp_path,
            self.SCOPE,
            """\
            def load(path):
                try:
                    return open(path).read()
                except Exception as error:
                    raise RuntimeError("load failed") from error
            """,
            rules=["swallowed-exception"],
        )
        assert report.clean

    def test_narrow_handler_clean(self, tmp_path):
        report = lint(
            tmp_path,
            self.SCOPE,
            """\
            def load(path):
                try:
                    return open(path).read()
                except FileNotFoundError:
                    return None
            """,
            rules=["swallowed-exception"],
        )
        assert report.clean

    def test_out_of_scope_module_not_linted(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/nn/helpers.py",
            """\
            def load(path):
                try:
                    return open(path).read()
                except Exception:
                    return None
            """,
            rules=["swallowed-exception"],
        )
        assert report.clean

    def test_suppression_works(self, tmp_path):
        report = lint(
            tmp_path,
            self.SCOPE,
            """\
            def probe(path):
                try:
                    return open(path).read()
                # best-effort probe; absence is a normal outcome.  repro: ignore[swallowed-exception]
                except Exception:
                    return None
            """,
            rules=["swallowed-exception"],
        )
        assert report.clean
        assert report.suppressed == 1


class TestMutableDefaultRule:
    def test_violations(self, tmp_path):
        report = lint(
            tmp_path,
            "mod.py",
            """\
            def f(cache={}):
                return cache

            def g(items=[], *, acc=list()):
                return items, acc
            """,
            rules=["mutable-default"],
        )
        assert len(report.findings) == 3

    def test_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "mod.py",
            """\
            def f(cache=None, shape=(3, 3), label="x"):
                if cache is None:
                    cache = {}
                return cache
            """,
            rules=["mutable-default"],
        )
        assert report.clean

    def test_suppressed(self, tmp_path):
        report = lint(
            tmp_path,
            "mod.py",
            """\
            def f(cache={}):  # repro: ignore[mutable-default]
                return cache
            """,
            rules=["mutable-default"],
        )
        assert report.clean
        assert report.suppressed == 1


class TestFingerprintCoverageRule:
    def test_real_dataclasses_are_covered(self):
        assert coverage_messages() == []

    def test_repo_passes_project_rule(self):
        report = run_analysis([], rules=["fingerprint-coverage"])
        assert report.clean

    def test_new_hardware_field_is_caught(self):
        @dataclass(frozen=True)
        class ExtendedHardwareConfig(HardwareConfig):
            extra_knob: float = 0.0

        messages = coverage_messages(hardware_cls=ExtendedHardwareConfig)
        assert any(
            key == "HardwareConfig" and "extra_knob" in message
            for key, message in messages
        )

    def test_acknowledging_the_new_field_clears_it(self):
        @dataclass(frozen=True)
        class ExtendedHardwareConfig(HardwareConfig):
            extra_knob: float = 0.0

        acknowledged = {
            key: set(names) for key, names in ACKNOWLEDGED_FIELDS.items()
        }
        acknowledged["HardwareConfig"].add("extra_knob")
        messages = coverage_messages(
            hardware_cls=ExtendedHardwareConfig, acknowledged=acknowledged
        )
        assert messages == []

    def test_stale_acknowledged_field_is_caught(self):
        acknowledged = {
            key: set(names) for key, names in ACKNOWLEDGED_FIELDS.items()
        }
        acknowledged["HardwareConfig"].add("ghost_field")
        messages = coverage_messages(acknowledged=acknowledged)
        assert any(
            "ghost_field" in message and "no longer exists" in message
            for _key, message in messages
        )

    def test_stale_exclusion_is_caught(self):
        excluded = {key: set(names) for key, names in EXCLUDED_FIELDS.items()}
        excluded["ExperimentSpec"].add("seed")
        messages = coverage_messages(excluded=excluded)
        assert any(
            "seed" in message and "exclusion list is stale" in message
            for _key, message in messages
        )


class TestEngine:
    def test_directory_walk_counts_and_dedup(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("import numpy as np\nx = np.random.rand()\n")
        (tmp_path / "pkg" / "b.py").write_text("y = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "a.py").write_text("zzz =\n")
        (tmp_path / "pkg" / "notes.txt").write_text("not python\n")
        # Overlapping path args must not double-count or duplicate findings.
        report = run_analysis(
            [tmp_path, tmp_path / "pkg" / "a.py"],
            root=tmp_path,
            rules=["unseeded-random"],
            include_project_rules=False,
        )
        assert report.files_checked == 2
        assert len(report.findings) == 1
        assert report.findings[0].path == "pkg/a.py"

    def test_parse_error_becomes_finding(self, tmp_path):
        report = lint(tmp_path, "broken.py", "def f(:\n")
        assert rules_hit(report) == {PARSE_ERROR}

    def test_iter_python_files_skips_hidden(self, tmp_path):
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "a.py").write_text("x = 1\n")
        (tmp_path / "b.py").write_text("y = 1\n")
        files = list(iter_python_files([tmp_path]))
        assert [path.name for path in files] == ["b.py"]

    def test_findings_are_sorted(self, tmp_path):
        report = lint(
            tmp_path,
            "mod.py",
            """\
            import numpy as np

            b = np.asarray([1.0], dtype=np.float64)
            a = np.random.rand(3)
            """,
            rules=["unseeded-random", "dtype-literal"],
        )
        assert [finding.line for finding in report.findings] == sorted(
            finding.line for finding in report.findings
        )


class TestReporters:
    def _violating_report(self, tmp_path):
        return lint(
            tmp_path,
            "mod.py",
            "import numpy as np\nx = np.random.rand(3)\n",
            rules=["unseeded-random"],
        )

    def test_render_text_rows_and_summary(self, tmp_path):
        report = self._violating_report(tmp_path)
        text = render_text(report)
        assert "mod.py:2: [unseeded-random]" in text
        assert "1 finding(s)" in text
        assert "unseeded-random=1" in text

    def test_render_text_clean(self, tmp_path):
        report = lint(tmp_path, "mod.py", "x = 1\n")
        assert render_text(report).startswith("clean:")

    def test_render_json_round_trips(self, tmp_path):
        report = self._violating_report(tmp_path)
        payload = json.loads(render_json(report))
        assert payload["clean"] is False
        assert payload["files_checked"] == 1
        assert payload["findings"][0]["rule"] == "unseeded-random"
        assert payload["findings"][0]["line"] == 2

    def test_render_rule_list_names_every_rule(self):
        text = render_rule_list(all_rules())
        for rule in all_rules():
            assert rule.id in text
            assert "motivation:" in text


class TestSelfApplication:
    def test_shipped_tree_lints_clean(self):
        from repro.analysis.cli import default_lint_paths, repo_root

        report = run_analysis(default_lint_paths(), root=repo_root())
        assert report.clean, render_text(report)


class TestUnboundedWaitRule:
    REL = "src/repro/serving/pump.py"

    def test_flags_bare_blocking_calls(self, tmp_path):
        report = lint(
            tmp_path,
            self.REL,
            """\
            def pump(queue, event, future):
                item = queue.get()
                event.wait()
                return item, future.result()
            """,
            rules=["unbounded-wait"],
        )
        assert rules_hit(report) == {"unbounded-wait"}
        assert len(report.findings) == 3
        assert {finding.line for finding in report.findings} == {2, 3, 4}

    def test_timeout_forms_are_clean(self, tmp_path):
        report = lint(
            tmp_path,
            self.REL,
            """\
            def pump(queue, event, future, remaining):
                item = queue.get(timeout=0.05)
                event.wait(0.5)
                return item, future.result(timeout=remaining)
            """,
            rules=["unbounded-wait"],
        )
        assert report.clean

    def test_mapping_get_is_not_a_wait(self, tmp_path):
        report = lint(
            tmp_path,
            self.REL,
            """\
            def lookup(counters, key):
                return counters.get(key, 0) + counters.get("total")
            """,
            rules=["unbounded-wait"],
        )
        assert report.clean

    def test_only_applies_to_the_serving_tree(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/experiments/pump.py",
            """\
            def pump(queue):
                return queue.get()
            """,
            rules=["unbounded-wait"],
        )
        assert report.clean

    def test_justified_suppression(self, tmp_path):
        report = lint(
            tmp_path,
            self.REL,
            """\
            def pump(handle):
                # Bounded by construction: the handle caps its own wait.
                return handle.result()  # repro: ignore[unbounded-wait]
            """,
            rules=["unbounded-wait"],
        )
        assert report.clean
        assert report.suppressed == 1
