#!/usr/bin/env python
"""ConvNet on (synthetic) CIFAR-10: the paper's "more challenging" workload.

Regenerates the ConvNet side of the evaluation: Table 1 (rank clipping),
Table 3 (group connection deletion), and the Figure 8 sweep of routing
wires/area versus classification error over the group-Lasso strength λ.
Also prints the Figure 9 structural-sparsity sketches of the deleted
matrices.

Run with:           python examples/convnet_cifar_scissor.py
Full paper scale:   python examples/convnet_cifar_scissor.py --scale paper
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments import (
    convnet_workload,
    run_table1,
    run_table3,
    sparsity_maps,
    sweep_group_deletion,
    train_baseline,
)
from repro.hardware import network_area_fraction


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        default="small",
        choices=["tiny", "small", "paper"],
        help="experiment scale preset (default: small)",
    )
    parser.add_argument("--tolerance", type=float, default=0.03, help="clipping error ε")
    parser.add_argument("--strength", type=float, default=0.04, help="group-Lasso λ")
    parser.add_argument(
        "--sweep",
        type=float,
        nargs="+",
        default=[0.01, 0.03, 0.06],
        help="λ values for the Figure 8 sweep",
    )
    args = parser.parse_args()

    workload = convnet_workload(args.scale)
    print(f"=== Training the dense ConvNet baseline ({args.scale} scale) ===")
    network, accuracy, setup = train_baseline(workload)
    print(f"baseline accuracy: {accuracy:.2%}")

    # ------------------------------------------------------------ Table 1
    print("\n=== Rank clipping (Table 1, ConvNet rows) ===")
    table1 = run_table1(
        workload,
        tolerance=args.tolerance,
        setup=setup,
        baseline_network=network,
        baseline_accuracy=accuracy,
    )
    print(table1.format_table())
    ranks = table1.row("Rank clipping").ranks
    area = network_area_fraction(
        workload.layer_shapes, {name: ranks.get(name) for name in workload.layer_shapes}
    )
    print(f"total crossbar area after clipping: {area:.2%} of the dense design")

    # ------------------------------------------------------------ Table 3
    print("\n=== Group connection deletion (Table 3, ConvNet rows) ===")
    table3 = run_table3(
        workload,
        tolerance=args.tolerance,
        strength=args.strength,
        include_small_matrices=True,
        setup=setup,
        baseline_network=network,
        baseline_accuracy=accuracy,
    )
    print(table3.format_table())

    # ----------------------------------------------------------- Figure 9
    print("\n=== Structural sparsity after deletion (Figure 9) ===")
    for sparsity in sparsity_maps(table3.deletion_result.network, include_small_matrices=True):
        print(
            f"\n{sparsity.name}: nonzero {sparsity.nonzero_fraction:.1%}, "
            f"empty crossbars {sparsity.empty_crossbars}/{sparsity.crossbar_density.size}"
        )
        print(sparsity.ascii_sketch())

    # ----------------------------------------------------------- Figure 8
    print("\n=== Routing wires / area vs classification error (Figure 8) ===")
    sweep = sweep_group_deletion(
        workload,
        args.sweep,
        tolerance=args.tolerance,
        include_small_matrices=True,
        setup=setup,
        baseline_network=network,
    )
    print(sweep.format_table())


if __name__ == "__main__":
    main()
