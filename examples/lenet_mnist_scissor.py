#!/usr/bin/env python
"""LeNet on (synthetic) MNIST: regenerate the paper's LeNet experiments.

This is the workload behind Table 1, Table 3, Figure 3 and Figure 5 of the
paper.  The script:

1. trains a scaled-down LeNet baseline on the synthetic MNIST substitute,
2. runs rank clipping and prints the Table 1 rows (Original / Direct LRA /
   Rank clipping) plus the Figure 3 rank-ratio trace,
3. runs group connection deletion and prints the Table 3 rows (MBC sizes and
   remaining routing wires) plus the Figure 5 deletion trace,
4. prints the resulting crossbar-area and routing-area savings.

Run with:           python examples/lenet_mnist_scissor.py
Full paper scale:   python examples/lenet_mnist_scissor.py --scale paper
(The paper scale trains the real 20/50/500 LeNet for tens of thousands of
iterations on this numpy substrate — expect hours.)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments import (
    lenet_workload,
    run_figure3,
    run_figure5,
    run_table1,
    run_table3,
    train_baseline,
)
from repro.hardware import network_area_fraction


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        default="small",
        choices=["tiny", "small", "paper"],
        help="experiment scale preset (default: small)",
    )
    parser.add_argument("--tolerance", type=float, default=0.03, help="clipping error ε")
    parser.add_argument("--strength", type=float, default=0.04, help="group-Lasso λ")
    args = parser.parse_args()

    workload = lenet_workload(args.scale)
    print(f"=== Training the dense LeNet baseline ({args.scale} scale) ===")
    network, accuracy, setup = train_baseline(workload)
    print(f"baseline accuracy: {accuracy:.2%}")

    # ------------------------------------------------------------ Table 1
    print("\n=== Rank clipping (Table 1) ===")
    table1 = run_table1(
        workload,
        tolerance=args.tolerance,
        setup=setup,
        baseline_network=network,
        baseline_accuracy=accuracy,
    )
    print(table1.format_table())
    ranks = table1.row("Rank clipping").ranks
    area = network_area_fraction(
        workload.layer_shapes, {name: ranks.get(name) for name in workload.layer_shapes}
    )
    print(f"total crossbar area after clipping: {area:.2%} of the dense design")

    # ----------------------------------------------------------- Figure 3
    print("\n=== Rank-ratio trace during clipping (Figure 3) ===")
    figure3 = run_figure3(
        workload,
        tolerance=args.tolerance,
        setup=setup,
        baseline_network=network,
        baseline_accuracy=accuracy,
    )
    print(figure3.format_series())

    # ------------------------------------------------------------ Table 3
    print("\n=== Group connection deletion (Table 3) ===")
    table3 = run_table3(
        workload,
        tolerance=args.tolerance,
        strength=args.strength,
        include_small_matrices=True,
        setup=setup,
        baseline_network=network,
        baseline_accuracy=accuracy,
    )
    print(table3.format_table())

    # ----------------------------------------------------------- Figure 5
    print("\n=== Deleted-wire trace during deletion (Figure 5) ===")
    figure5 = run_figure5(
        workload,
        tolerance=args.tolerance,
        strength=args.strength,
        include_small_matrices=True,
        setup=setup,
        baseline_network=network,
    )
    print(figure5.format_series())

    print("\nSummary")
    print(f"  crossbar area after rank clipping:  {area:.2%}")
    print(f"  mean remaining routing wires:       {table3.mean_wire_fraction():.2%}")
    print(f"  mean remaining routing area:        {table3.mean_routing_area_fraction():.2%}")
    print(f"  final accuracy:                     {table3.final_accuracy:.2%}")


if __name__ == "__main__":
    main()
