#!/usr/bin/env python
"""Quickstart: the Group Scissor pipeline end to end in under a minute.

This example trains a small fully-connected network on an easy synthetic
classification task, then applies both steps of the Group Scissor framework:

1. **Rank clipping** — the dense layers are converted to explicit low-rank
   factorizations ``W ≈ U·Vᵀ`` and their ranks are clipped during training
   (paper Algorithm 2), shrinking the crossbar area needed to implement them.
2. **Group connection deletion** — group-Lasso regularization aligned with
   the crossbar tiling drives whole row/column groups to zero so their
   routing wires can be removed (paper Section 3.2).

Finally, the network is mapped onto the memristor-crossbar hardware model and
the crossbar-area / routing-area savings are reported.

Four engine features worth knowing about (demonstrated at the end):

* **Parallel sweeps** — the ε/λ hyper-parameter sweeps behind the paper's
  figures run through ``SweepEngine``: pass ``SweepEngine(workers=2)`` to fan
  sweep points over worker processes (results are bit-identical to a serial
  run) with batched multi-network evaluation of the finished points.
* **Lockstep sweeps** — ``SweepEngine(mode="lockstep")`` instead trains all
  λ-points of one architecture group together as a single stacked program
  (shared im2col, one ``(K, out, in)`` batched matmul per weighted layer,
  stacked-state SGD, per-point-λ group Lasso), bit-identical per point to
  the serial path.  It beats process fan-out on 1-core boxes and on
  identical-shape λ grids, which is exactly the Figure-8 shape; ε sweeps
  keep the per-point path because rank clipping makes their points diverge
  structurally.  Lockstep shares one batch stream across points by default
  (that is what lets im2col be extracted once); with
  ``per_point_seed=True`` each point keeps its own stream and the engine
  stacks the per-point batches instead — still bit-identical, just without
  the shared-input savings.
* **Dtype policy** — all layers/losses/parameters follow the global policy in
  ``repro.nn.dtype`` (float64 by default).  Wrap inference in
  ``dtype_scope("float32")`` to halve memory traffic when full precision is
  not needed.
* **Cache lifecycle** — layers cache backward context only in training mode
  and release it when ``backward`` completes, so inference (``predict``) and
  idle networks hold no O(batch) activations.  ``network.release_caches()``
  drops any remaining context explicitly.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core import (
    GroupDeletionConfig,
    GroupScissor,
    RankClippingConfig,
    ScissorConfig,
)
from repro.data import ArrayDataset, DataLoader, make_gaussian_blobs
from repro.hardware import CrossbarLibrary, NetworkMapper, TechnologyParameters
from repro.models import build_mlp
from repro.nn import SGD, SoftmaxCrossEntropy, Trainer, dtype


def make_data():
    """An easy, normalized 10-class classification problem."""
    train, test = make_gaussian_blobs(
        num_classes=10, num_features=64, samples_per_class=60, separation=3.5, seed=0
    )
    mean, std = train.inputs.mean(), train.inputs.std()
    return (
        ArrayDataset((train.inputs - mean) / std, train.targets),
        ArrayDataset((test.inputs - mean) / std, test.targets),
    )


def main() -> None:
    train, test = make_data()

    def trainer_factory(network, callbacks=()):
        """Standard SGD trainer used for every phase of the pipeline."""
        loader = DataLoader(train, batch_size=32, shuffle=True, rng=1)
        optimizer = SGD(network.parameters(), lr=0.05, momentum=0.9)
        return Trainer(
            network,
            SoftmaxCrossEntropy(),
            optimizer,
            loader,
            eval_data=test.arrays(),
            callbacks=list(callbacks),
            eval_interval=50,
        )

    # ----------------------------------------------------------- baseline
    print("=== Training the dense baseline ===")
    dense = build_mlp(64, [96, 48], 10, rng=0)
    trainer = trainer_factory(dense)
    trainer.run(300)
    baseline_accuracy = trainer.evaluate()
    print(f"baseline accuracy: {baseline_accuracy:.2%}")

    # A small crossbar limit (16x16) makes even this MLP "big" for the
    # hardware, so both pipeline steps have real work to do.
    technology = TechnologyParameters(max_crossbar_rows=16, max_crossbar_cols=16)
    mapper = NetworkMapper(technology=technology, library=CrossbarLibrary(technology=technology))

    # ------------------------------------------------------ group scissor
    print("\n=== Running Group Scissor (rank clipping + group deletion) ===")
    config = ScissorConfig(
        rank_clipping=RankClippingConfig(tolerance=0.05, clip_interval=25, max_iterations=150),
        group_deletion=GroupDeletionConfig(
            strength=0.05,
            iterations=150,
            finetune_iterations=100,
            include_small_matrices=True,
        ),
    )
    scissor = GroupScissor(config, trainer_factory, mapper=mapper)
    result = scissor.run(dense, baseline_accuracy=baseline_accuracy)

    print(result.format_summary())

    # ------------------------------------------------------------ hardware
    print("\n=== Crossbar mapping of the final network ===")
    print(result.final_report.format_table())

    # ------------------------------------------------- float32 inference
    # The dtype policy makes reduced-precision inference a one-liner; the
    # compressed network loses no measurable accuracy at single precision.
    # (Parameters are stored at the policy active when they are set, so the
    # state_dict round-trip casts the trained weights to float32.)
    inputs, targets = test.arrays()
    with dtype.dtype_scope("float32"):
        result.final_network.load_state_dict(result.final_network.state_dict())
        predictions = result.final_network.predict_classes(inputs)
    accuracy32 = float((predictions == targets).mean())
    print(f"\nfloat32 inference accuracy: {accuracy32:.2%}")

    # --------------------------------------------------- parallel sweeps
    # The paper's Figure 6-8 sweeps retrain one point per hyper-parameter
    # value.  A SweepEngine fans the points over worker processes — results
    # are bit-identical to a serial run — and evaluates all finished point
    # networks in one batched pass.
    print("\n=== Parallel ε sweep (2 worker processes) ===")
    from repro.experiments import (
        SweepEngine,
        mlp_workload,
        sweep_group_deletion,
        sweep_rank_clipping,
    )

    engine = SweepEngine(workers=2)  # workers=1 falls back to serial execution
    sweep = sweep_rank_clipping(mlp_workload("tiny"), [0.02, 0.1, 0.3], engine=engine)
    print(sweep.format_table())

    # ---------------------------------------------------- lockstep λ sweep
    # The λ group-deletion sweep trains K identically-shaped networks; on a
    # 1-core box the fastest policy is to train them in lockstep as one
    # stacked program rather than fanning processes.  Results are
    # bit-identical to the per-point path.
    print("\n=== Lockstep λ sweep (stacked multi-network training) ===")
    lockstep = sweep_group_deletion(
        mlp_workload("tiny"),
        [0.01, 0.03, 0.08],
        include_small_matrices=True,
        engine=SweepEngine(mode="lockstep"),
    )
    print(lockstep.format_table())

    print("\nDone. Explore examples/lenet_mnist_scissor.py for the paper's LeNet workload.")


if __name__ == "__main__":
    main()
