#!/usr/bin/env python
"""Quickstart: the declarative experiment API end to end in under a minute.

Every paper deliverable of this reproduction — Tables 1/3, the Figure 3/5
traces, the Figure 6-8 sweeps, the headline area numbers — runs through one
declarative pipeline:

    ExperimentSpec  ->  plan  ->  run  ->  artifact

1. **Spec** — a frozen, JSON-serializable description of the experiment:
   workload + scale (+ overrides), method (rank_clipping / group_deletion /
   baseline), sweep grid, engine policy (serial / process-fanned / lockstep)
   and seed policy.  Specs round-trip through plain dicts and hash to stable
   content fingerprints.
2. **Plan** — the spec expands into fingerprinted point tasks executed by the
   ``SweepEngine`` (the PR 2-3 machinery: process fan-out, batched
   multi-network evaluation, lockstep stacked training — all bit-identical).
3. **Run** — ``execute_spec`` trains whatever is not already stored.
4. **Artifact** — a ``RunStore`` persists every run as a content-addressed
   JSON artifact.  Re-running a complete spec performs **zero training**, and
   runs with overlapping grids (or different engine policies) reuse each
   other's point results.

The same workflow is available from the shell:

    python -m repro run table1 --scale tiny --workers 1
    python -m repro list / show / compare / bench

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments import (
    REGISTRY,
    ExperimentSpec,
    RunStore,
    execute_spec,
    result_from_payload,
)


def main() -> None:
    # A store directory holds one JSON artifact per spec fingerprint.  Use a
    # persistent path (e.g. ``runs/``) in real projects; the CLI defaults to
    # ``$REPRO_RUN_STORE`` or ``runs/``.
    store = RunStore(Path(tempfile.mkdtemp(prefix="repro-quickstart-")))
    print(f"run store: {store.root}\n")

    # ------------------------------------------------------- 1. define a spec
    # An ε rank-clipping sweep (the Figure 6/7 experiment) on the fast MLP
    # workload.  `scale_overrides` trims the tiny preset further so this
    # example stays sub-second; drop them (or use scale="small"/"paper") for
    # real runs.
    spec = ExperimentSpec(
        kind="sweep",
        method="rank_clipping",
        workload="mlp",
        scale="tiny",
        grid=(0.02, 0.1, 0.3),
        name="quickstart-sweep",
    )
    print("=== Spec ===")
    print(spec.to_json())

    # ------------------------------------------------------------- 2. run it
    print("=== First run (trains baseline + 3 sweep points) ===")
    run = execute_spec(spec, store=store)
    print(run.format_summary())
    print()
    print(run.result.format_table())

    # ------------------------------------------------- 3. resume = no training
    print("\n=== Second run (complete artifact: zero new training) ===")
    again = execute_spec(spec, store=store)
    assert again.computed_points == 0
    print(again.format_summary())

    # A wider grid reuses the three stored points and only trains the new
    # one.  (The distinct name keeps `store.find("quickstart-sweep")`
    # unambiguous; artifacts are addressed by content fingerprint either way.)
    wider = spec.with_updates(grid=(0.02, 0.1, 0.3, 0.5), name="quickstart-sweep-wide")
    print("\n=== Wider grid (3 points reused, 1 trained) ===")
    print(execute_spec(wider, store=store).format_summary())

    # ------------------------------------- 4. reload the artifact from disk
    print("\n=== Reloaded from the stored artifact ===")
    artifact = store.find(spec.fingerprint())
    result = result_from_payload(spec, artifact["result"])
    print(result.format_table())

    # ----------------------------------------------------- registry presets
    # Paper deliverables are registered by name; overrides apply per call.
    # Engine fields route automatically: workers=2 fans sweep points over
    # processes, mode="lockstep" trains all λ-points as one stacked program —
    # both bit-identical to the serial path.
    print("\n=== Registry preset: table1 on the tiny MLP workload ===")
    table1 = REGISTRY.get("table1", workload="mlp", scale="tiny")
    print(execute_spec(table1, store=store).result.format_table())

    print("\n=== Registry preset: λ-deletion sweep in lockstep mode ===")
    figure8 = REGISTRY.get(
        "figure8", workload="mlp", scale="tiny", grid=(0.01, 0.03, 0.08), mode="lockstep"
    )
    print(execute_spec(figure8, store=store).result.format_table())

    print("\nStored runs:")
    for row in store.list_runs():
        print(f"  {row['fingerprint']}  {row['name']:<18} {row['kind']:<8} complete={row['complete']}")

    # ------------------------------------ 5. queued execution (the scheduler)
    # Instead of running inline, specs can be *submitted* to a persistent job
    # queue and executed by the `serve-jobs` daemon, which runs nodes from
    # different jobs concurrently while keeping every job bit-identical to
    # `execute_spec`.  The shell equivalent:
    #
    #     python -m repro serve-jobs --workers 4 &   # daemon; SIGINT drains
    #     python -m repro submit figure6 --workload mlp --scale tiny \
    #         --grid 0.05 0.3
    #     python -m repro status        # queue ⋈ store health table (--json)
    #     python -m repro watch <job>   # stream per-node events
    #     python -m repro cancel <job>  # honored between nodes
    #
    # Here we drive the same machinery in process: submit two sweeps, run the
    # scheduler until the queue drains, and read the joined status back.
    from repro.scheduler import JobQueue, JobScheduler
    from repro.scheduler.client import job_rows, render_job_rows
    from repro.scheduler.daemon import default_queue_root

    print("\n=== Queued execution: submit two sweeps, drain the queue ===")
    queue = JobQueue(default_queue_root(store.root))
    job_a = queue.submit(spec.with_updates(name="queued-sweep"))
    job_b = queue.submit(wider.with_updates(name="queued-sweep-wide"))
    print(f"queued {job_a.job_id} and {job_b.job_id}")
    finalized = JobScheduler(queue, store, workers=2, poll_s=0.05).run(drain=True)
    print(f"drained: {finalized} job(s) finalized (all points already stored)")
    print(render_job_rows(job_rows(queue, store)))

    print(
        "\nDone.  Try the CLI next:\n"
        f"  python -m repro list --store {store.root}\n"
        f"  python -m repro show quickstart-sweep --store {store.root}\n"
        "  python -m repro run table1 --scale tiny --workers 1\n"
        f"  python -m repro serve-jobs --store {store.root} --drain"
    )


if __name__ == "__main__":
    main()
