#!/usr/bin/env python
"""Hardware-model walkthrough: reproduce the paper's headline area numbers.

Unlike the other examples this one involves **no training at all** — it shows
how the crossbar hardware model alone reproduces the paper's headline
figures in closed form from the reported ranks and remaining-wire
percentages, and how to use the mapper on the full-size LeNet / ConvNet
topologies:

* crossbar area of the rank-clipped LeNet  -> 13.62 %
* crossbar area of the rank-clipped ConvNet -> 51.81 %
* routing area after deletion (LeNet)       -> 8.1 %
* routing area after deletion (ConvNet)     -> 52.06 %

Run with:  python examples/hardware_area_report.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core import convert_to_lowrank
from repro.experiments import paper_headline_numbers
from repro.hardware import (
    NetworkMapper,
    area_reduction_rank_bound,
    layer_area_fraction,
    plan_tiling,
)
from repro.models import (
    PAPER_CONVNET_RANKS,
    PAPER_LENET_RANKS,
    ConvNetConfig,
    LeNetConfig,
    build_convnet,
    build_lenet,
)


def main() -> None:
    # ------------------------------------------------- closed-form headline
    print("=== Headline numbers recomputed through the hardware model ===")
    print(paper_headline_numbers().format_table())

    # ------------------------------------------------------- per-layer view
    print("\n=== Per-layer crossbar area of the rank-clipped LeNet ===")
    shapes = LeNetConfig.paper().layer_shapes()
    for name, (n, m) in shapes.items():
        rank = PAPER_LENET_RANKS.get(name)
        fraction = layer_area_fraction(n, m, rank)
        bound = area_reduction_rank_bound(n, m)
        rank_str = "dense" if rank is None else f"K={rank}"
        print(
            f"  {name:<6} N x M = {n:>4} x {m:<4} {rank_str:<8} "
            f"area {fraction:7.2%}   (saves area iff K < {bound:.1f})"
        )

    # ------------------------------------------------------- tiling example
    print("\n=== MBC size selection for the big LeNet matrices (Table 3) ===")
    for name, (rows, cols) in {
        "fc1_u (U: 500x36)": (500, 36),
        "fc1_v (Vt: 36x800)": (36, 800),
        "fc2   (Wt: 500x10)": (500, 10),
    }.items():
        plan = plan_tiling(rows, cols, name=name)
        print(
            f"  {name:<20} tiles of {plan.tile_rows}x{plan.tile_cols}  "
            f"({plan.grid_rows}x{plan.grid_cols} = {plan.num_crossbars} crossbars, "
            f"{plan.dense_wire_count()} routing wires)"
        )

    # ------------------------------------------------- full network mapping
    print("\n=== Mapping the full-size networks onto 64x64 crossbars ===")
    mapper = NetworkMapper()
    for builder, config, ranks, label in (
        (build_lenet, LeNetConfig.paper(), PAPER_LENET_RANKS, "LeNet"),
        (build_convnet, ConvNetConfig.paper(), PAPER_CONVNET_RANKS, "ConvNet"),
    ):
        dense = builder(config, rng=0)
        clipped = convert_to_lowrank(dense, ranks=ranks)
        dense_report = mapper.map_network(dense)
        clipped_report = mapper.map_network(clipped)
        fraction = clipped_report.area_fraction_of(dense_report)
        print(
            f"\n{label}: dense {dense_report.total_crossbar_area_f2:,.0f} F^2 on "
            f"{dense_report.total_crossbars} crossbars -> clipped "
            f"{clipped_report.total_crossbar_area_f2:,.0f} F^2 on "
            f"{clipped_report.total_crossbars} crossbars ({fraction:.2%})"
        )
        print(clipped_report.format_table())


if __name__ == "__main__":
    main()
