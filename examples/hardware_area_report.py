#!/usr/bin/env python
"""Hardware-model walkthrough: area analysis and device-level accuracy.

Demonstrates both layers of the crossbar hardware model through the
declarative experiment API (spec → plan → run → artifact):

1. the **analytical layer** — headline area numbers in closed form via the
   ``headline`` registry preset, MBC tile selection for the Table 3
   matrices, and a full mapping of the paper-size LeNet/ConvNet topologies;
2. the **device layer** — simulated inference accuracy of a trained network
   under finite write precision and analog noise, first hands-on with
   :func:`repro.hardware.simulate_evaluate`, then end-to-end through the
   ``figure_hw`` / ``figure_hw_baseline`` presets and
   :func:`repro.experiments.execute_spec`.

Everything trained runs at the ``tiny`` scale so the whole script finishes
in seconds.  Run with:

    python examples/hardware_area_report.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core import convert_to_lowrank
from repro.experiments import (
    REGISTRY,
    HardwareAccuracySeries,
    execute_spec,
    lenet_workload,
    train_baseline,
)
from repro.hardware import (
    HardwareConfig,
    NetworkMapper,
    plan_tiling,
    simulate_evaluate,
)
from repro.models import (
    PAPER_CONVNET_RANKS,
    PAPER_LENET_RANKS,
    ConvNetConfig,
    LeNetConfig,
    build_convnet,
    build_lenet,
)


def headline_numbers() -> None:
    """The paper's abstract numbers, through the registry + executor."""
    print("=== Headline numbers recomputed through the hardware model ===")
    run = execute_spec(REGISTRY.get("headline"))
    print(run.result.format_table())


def tiling_examples() -> None:
    """MBC size selection for the big LeNet matrices (Table 3)."""
    print("\n=== MBC size selection for the big LeNet matrices (Table 3) ===")
    for name, (rows, cols) in {
        "fc1_u (U: 500x36)": (500, 36),
        "fc1_v (Vt: 36x800)": (36, 800),
        "fc2   (Wt: 500x10)": (500, 10),
    }.items():
        plan = plan_tiling(rows, cols, name=name)
        print(
            f"  {name:<20} tiles of {plan.tile_rows}x{plan.tile_cols}  "
            f"({plan.grid_rows}x{plan.grid_cols} = {plan.num_crossbars} crossbars, "
            f"{plan.dense_wire_count()} routing wires)"
        )


def full_network_mapping() -> None:
    """Map the paper-size topologies onto 64x64 crossbars."""
    print("\n=== Mapping the full-size networks onto 64x64 crossbars ===")
    mapper = NetworkMapper()
    for builder, config, ranks, label in (
        (build_lenet, LeNetConfig.paper(), PAPER_LENET_RANKS, "LeNet"),
        (build_convnet, ConvNetConfig.paper(), PAPER_CONVNET_RANKS, "ConvNet"),
    ):
        dense = builder(config, rng=0)
        clipped = convert_to_lowrank(dense, ranks=ranks)
        dense_report = mapper.map_network(dense)
        clipped_report = mapper.map_network(clipped)
        fraction = clipped_report.area_fraction_of(dense_report)
        print(
            f"  {label}: dense {dense_report.total_crossbar_area_f2:,.0f} F^2 on "
            f"{dense_report.total_crossbars} crossbars -> clipped "
            f"{clipped_report.total_crossbar_area_f2:,.0f} F^2 on "
            f"{clipped_report.total_crossbars} crossbars ({fraction:.2%})"
        )


def accuracy_versus_noise() -> None:
    """Device-level accuracy of one trained network across a noise ramp."""
    print("\n=== Device-level accuracy vs programming noise (tiny LeNet) ===")
    workload = lenet_workload("tiny")
    network, software_accuracy, setup = train_baseline(workload)
    inputs, targets = setup.test_dataset.arrays()
    print(f"  software accuracy: {software_accuracy:.2%}")
    print(f"  {'corner':<18}{'accuracy':>10}")
    for noise in (0.0, 0.02, 0.05, 0.1, 0.2, 0.4):
        config = HardwareConfig(bits=6, program_noise=noise, adc_bits=8)
        (accuracy,) = simulate_evaluate([network], inputs, targets, config)
        print(f"  {config.label:<18}{accuracy:>10.2%}")
    for bits in (2, 3, 4, 8):
        config = HardwareConfig(bits=bits)
        (accuracy,) = simulate_evaluate([network], inputs, targets, config)
        print(f"  {config.label:<18}{accuracy:>10.2%}")


def figure_hw_pipeline() -> None:
    """The same evaluation as a resumable spec run: figure_hw vs baseline."""
    print("\n=== figure_hw through the spec pipeline (tiny scale, no store) ===")
    compressed = execute_spec(REGISTRY.get("figure_hw", scale="tiny"))
    baseline = execute_spec(REGISTRY.get("figure_hw_baseline", scale="tiny"))
    print(HardwareAccuracySeries.from_result(baseline.result).format_series())
    print()
    print(HardwareAccuracySeries.from_result(compressed.result).format_series())
    print(
        "\n(With a store attached — `python -m repro run figure_hw --scale tiny` —\n"
        " these runs persist as artifacts, resume with zero recomputation, and\n"
        " `python -m repro compare figure_hw_baseline figure_hw` renders the\n"
        " per-corner accuracy deltas.)"
    )


def main() -> None:
    headline_numbers()
    tiling_examples()
    full_network_mapping()
    accuracy_versus_noise()
    figure_hw_pipeline()


if __name__ == "__main__":
    main()
