"""Table 1: accuracy and ranks for Original / Direct LRA / Rank clipping.

Paper reference (full-scale MNIST / CIFAR-10):

================  =========  =====================================
network           accuracy   ranks (conv1, conv2, [conv3,] fc1)
================  =========  =====================================
LeNet Original      99.15 %  20, 50, 500
LeNet Direct LRA    96.44 %  5, 12, 36
LeNet Clipping      99.14 %  5, 12, 36
ConvNet Original    82.01 %  32, 32, 64
ConvNet Direct      43.29 %  12, 19, 22
ConvNet Clipping    82.09 %  12, 19, 22
================  =========  =====================================

The benchmark regenerates the same three rows on the scaled-down synthetic
workloads.  The *shape* to verify: rank clipping reduces ranks substantially,
Direct LRA at those ranks loses accuracy, and rank clipping recovers to
(approximately) the original accuracy.
"""

from bench_utils import run_once
from repro.experiments import run_table1


def _check_shape(result, workload):
    original = result.row("Original")
    direct = result.row("Direct LRA")
    clipped = result.row("Rank clipping")
    full_ranks = {name: min(workload.layer_shapes[name]) for name in workload.clippable_layers}
    # Ranks are reduced in at least one layer.
    assert any(clipped.ranks[n] < full_ranks[n] for n in clipped.ranks)
    # Rank clipping tracks the original accuracy much better than Direct LRA
    # does (or at least as well), and stays within a few points of it.
    assert clipped.accuracy >= direct.accuracy - 1e-9
    assert clipped.accuracy >= original.accuracy - 0.05


def test_table1_lenet(benchmark, lenet_baseline):
    workload, network, accuracy, setup = lenet_baseline
    result = run_once(
        benchmark,
        run_table1,
        workload,
        setup=setup,
        baseline_network=network,
        baseline_accuracy=accuracy,
    )
    print()
    print(result.format_table())
    _check_shape(result, workload)


def test_table1_convnet(benchmark, convnet_baseline):
    workload, network, accuracy, setup = convnet_baseline
    result = run_once(
        benchmark,
        run_table1,
        workload,
        setup=setup,
        baseline_network=network,
        baseline_accuracy=accuracy,
    )
    print()
    print(result.format_table())
    _check_shape(result, workload)
