"""Helpers shared by the benchmark files (import as ``from bench_utils import ...``)."""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing.

    The experiments are long relative to micro-benchmarks, so calibration
    rounds would multiply the runtime for no statistical benefit.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
