"""Serving-runtime load benchmark: shed under overload, don't collapse.

Drives the ``repro.serving`` runtime — micro-batching workers over a warm
:class:`~repro.serving.cache.ProgrammedNetworkCache` entry at a non-ideal
device corner — with paced open-loop request streams at 0.5×, 1×, and 2× of
its calibrated sustained capacity.  Capacity is measured on the same process
immediately beforehand (burst-submit with retry-on-shed), so the load levels
track the machine rather than a hard-coded rate that would flake across
hosts.

Per level the collector records offered rate, completions, typed-rejection
counts, shed ratio, delivered throughput, and p50/p99 response latency.  The
acceptance bar is the robustness contract, not a raw-speed number:

* **zero silent drops** — ``completed + Σ rejections == requests`` at every
  level; every submission resolves to a response or a typed rejection.
* **shed, don't collapse** — at 2× saturation the runtime must still
  complete real work, with delivered throughput at least 25% of the 1×
  level's (admission control sheds the excess instead of letting queueing
  collapse goodput).

Numbers land in ``benchmark.extra_info`` and in ``BENCH_serving.json`` via
``benchmarks/run_benchmarks.py --suite serving``.  The companion chaos drill
(``python -m repro serve-bench --drill``) covers the fault path; this suite
covers the load path.
"""

from __future__ import annotations

from bench_utils import run_once
from repro.serving.bench import check_serving_stats, collect_serving_stats

REQUESTS_PER_LEVEL = 80


def test_serving_shed_dont_collapse(benchmark):
    stats = run_once(
        benchmark, collect_serving_stats, requests_per_level=REQUESTS_PER_LEVEL
    )
    check_serving_stats(stats)
    info = {
        "capacity_rps": round(stats["capacity_rps"], 1),
        "requests_per_level": stats["requests_per_level"],
    }
    for name, level in stats["levels"].items():
        info[f"{name}_throughput"] = round(level["throughput"], 1)
        info[f"{name}_p99_ms"] = round(level["p99_ms"], 3)
        info[f"{name}_shed_ratio"] = round(level["shed_ratio"], 4)
    benchmark.extra_info.update(info)
