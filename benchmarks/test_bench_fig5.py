"""Figure 5: percentage of deleted routing wires and accuracy during deletion.

Paper reference: starting from the rank-clipped LeNet, the deleted-wire
percentage of conv2_u / fc1_u / fc1_v / fc2_u rises over training (up to
93.9 % for fc1_v) while fine-tuning restores the baseline 99.1 % accuracy.

Shape to verify: the deleted fraction is non-decreasing over most of the run,
ends substantially above zero for at least one matrix, and accuracy after the
deletion phase remains close to the starting accuracy.
"""

import numpy as np

from bench_utils import run_once
from repro.experiments import run_figure5

STRENGTH = 0.04


def test_figure5_deletion_trace(benchmark, lenet_baseline):
    workload, network, accuracy, setup = lenet_baseline
    series = run_once(
        benchmark,
        run_figure5,
        workload,
        strength=STRENGTH,
        include_small_matrices=True,
        setup=setup,
        baseline_network=network,
    )
    print()
    print(series.format_series())

    final = series.final_deleted_fractions()
    assert final, "no matrices were traced"
    assert max(final.values()) > 0.1, "group Lasso deleted almost nothing"

    # Deleted fractions trend upward: the final value is at least the initial.
    for name, trace in series.deleted_wire_fraction.items():
        assert trace[-1] >= trace[0] - 1e-9, name

    accuracies = [a for a in series.accuracy if a is not None]
    assert accuracies, "accuracy was not recorded"
    assert np.max(accuracies) >= accuracies[0] - 0.05
