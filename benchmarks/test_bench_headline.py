"""Headline numbers of the paper's abstract.

Recomputes, through this library's hardware model, the four headline claims:

* LeNet crossbar area -> 13.62 %   (rank clipping, Table 1 ranks)
* ConvNet crossbar area -> 51.81 %
* LeNet routing area -> 8.1 %      (group deletion, Table 3 wire percentages)
* ConvNet routing area -> 52.06 %

These follow in closed form from the paper's reported ranks / remaining-wire
percentages, so the benchmark checks our hardware model reproduces them
exactly — the measured (trained) counterparts are produced by the Table 1 and
Table 3 benchmarks.
"""

import pytest

from bench_utils import run_once
from repro.experiments import PAPER_HEADLINE, paper_headline_numbers


def test_headline_numbers(benchmark):
    numbers = run_once(benchmark, paper_headline_numbers)
    print()
    print(numbers.format_table())
    assert numbers.lenet_crossbar_area_percent == pytest.approx(
        PAPER_HEADLINE["lenet_crossbar_area_percent"], abs=0.01
    )
    assert numbers.convnet_crossbar_area_percent == pytest.approx(
        PAPER_HEADLINE["convnet_crossbar_area_percent"], abs=0.01
    )
    assert numbers.lenet_routing_area_percent == pytest.approx(
        PAPER_HEADLINE["lenet_routing_area_percent"], abs=0.1
    )
    assert numbers.convnet_routing_area_percent == pytest.approx(
        PAPER_HEADLINE["convnet_routing_area_percent"], abs=0.1
    )
