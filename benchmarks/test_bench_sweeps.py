"""Sweep-throughput benchmark: the parallel sweep engine vs the serial path.

Measures one multi-point λ group-deletion sweep (the Figure 8 workload shape)
from a shared trained baseline under three execution policies:

* ``reference`` — ``SweepEngine.reference()``: the pre-engine behaviour
  (serial points, flat per-group Lasso, per-point inline evaluation, no
  routing memoization).
* ``serial`` — the default engine with one worker: vectorized crossbar group
  Lasso, memoized routing analysis, stripped unobserved evaluations, batched
  final evaluation.
* ``parallel`` — the same engine fanned over two worker processes.

Also times the batched multi-network evaluator against K independent
``predict`` calls on the finished point networks.  The acceptance bar is a
≥ 2× wall-clock speedup of the parallel engine over the reference sweep with
bit-identical serial↔parallel results; numbers land in
``benchmark.extra_info`` and in ``BENCH_sweeps.json`` via
``benchmarks/run_benchmarks.py``.

The benchmark runs the fast in-repo MLP workload at the ``tiny`` scale so
the reference configuration stays affordable inside CI; the speedup sources
(regularizer vectorization, record-step memoization, evaluation batching)
are scale-independent.
"""

from __future__ import annotations

import time

import numpy as np

from bench_utils import run_once
from repro.experiments import (
    SweepEngine,
    lenet_workload,
    mlp_workload,
    sweep_group_deletion,
    train_baseline,
)
from repro.nn.batched import batched_evaluate
from repro.nn.metrics import accuracy

STRENGTHS = [0.005, 0.01, 0.02, 0.04, 0.06, 0.08]
EVAL_NETWORKS = 4
EVAL_SAMPLES = 512


def collect_sweep_stats():
    """Sweep timings/speedups as a flat dict (shared with run_benchmarks)."""
    workload = mlp_workload("tiny")
    network, baseline_accuracy, setup = train_baseline(workload)
    kwargs = dict(
        include_small_matrices=True, setup=setup, baseline_network=network
    )

    def timed(engine):
        start = time.perf_counter()
        sweep = sweep_group_deletion(workload, STRENGTHS, engine=engine, **kwargs)
        return sweep, time.perf_counter() - start

    reference_sweep, t_reference = timed(SweepEngine.reference())
    serial_sweep, t_serial = timed(SweepEngine(workers=1))
    parallel_sweep, t_parallel = timed(SweepEngine(workers=2))

    # Correctness gates: parallelism must not change a single bit, and the
    # engine must report the same wire counts as the reference path.
    assert serial_sweep.points == parallel_sweep.points
    for fast, slow in zip(serial_sweep.points, reference_sweep.points):
        assert fast.wire_fractions == slow.wire_fractions

    # Batched multi-network evaluation vs K independent forward passes, on
    # same-architecture LeNet networks like the finished points of a Figure
    # 6-8 sweep (the convolutional first layer is where the shared-im2col
    # batching pays).
    lenet = lenet_workload("tiny")
    networks = [point_network(lenet, seed) for seed in range(EVAL_NETWORKS)]
    rng = np.random.default_rng(0)
    inputs = rng.standard_normal(
        (EVAL_SAMPLES, 1, lenet.scale.image_size, lenet.scale.image_size)
    )
    targets = rng.integers(0, 10, EVAL_SAMPLES)
    t_individual = _best_of(
        lambda: [
            float(accuracy(n.predict(inputs, batch_size=256), targets))
            for n in networks
        ]
    )
    t_batched = _best_of(lambda: batched_evaluate(networks, inputs, targets))

    return {
        "points": len(STRENGTHS),
        "routing_cache_hits": serial_sweep.routing_cache_stats.get("hits", 0),
        "routing_cache_misses": serial_sweep.routing_cache_stats.get("misses", 0),
        "reference_s": t_reference,
        "serial_engine_s": t_serial,
        "parallel_engine_s": t_parallel,
        "serial_speedup": t_reference / t_serial,
        "parallel_speedup": t_reference / t_parallel,
        "eval_individual_ms": 1e3 * t_individual,
        "eval_batched_ms": 1e3 * t_batched,
        "eval_batched_speedup": t_individual / t_batched,
    }


def point_network(workload, seed):
    """A finished sweep-point-like network (shared architecture, own weights)."""
    from repro.core.conversion import convert_to_lowrank

    return convert_to_lowrank(workload.build(seed))


def _best_of(func, repeats: int = 3) -> float:
    func()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        times.append(time.perf_counter() - start)
    return min(times)


def _check_shape(stats):
    # The tentpole acceptance bar: the parallel engine at 2 workers must beat
    # the serial pre-engine sweep by at least 2x wall-clock.
    assert stats["parallel_speedup"] >= 2.0, stats
    assert stats["serial_speedup"] >= 2.0, stats
    # Batched evaluation of same-architecture conv networks must beat (or at
    # worst match) K independent forwards; the observed band is 1.2-1.5x.
    assert stats["eval_batched_speedup"] >= 1.0, stats


def test_sweep_throughput(benchmark):
    stats = run_once(benchmark, collect_sweep_stats)
    _check_shape(stats)
    benchmark.extra_info.update(
        {k: round(v, 4) if isinstance(v, float) else v for k, v in stats.items()}
    )
