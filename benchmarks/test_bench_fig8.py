"""Figure 8: remaining routing wires and routing area versus classification error
(ConvNet), swept over the group-Lasso strength λ.

Paper reference: with growing λ (and therefore growing classification error,
17.5 %–20 %), the remaining routing wires of conv1 / conv2 / conv3 / fc1 fall
towards 56–7 % and the corresponding routing areas towards 56.25 % / 7.64 % /
21.44 % / 31.64 % at 1.5 % accuracy loss.

Shape to verify: averaged over the matrices, stronger λ leaves fewer wires;
routing area equals the square of the wire fraction; accuracy degrades
gracefully (not catastrophically) across the sweep.
"""

import numpy as np

from bench_utils import run_once
from repro.experiments import sweep_group_deletion

STRENGTHS = [0.01, 0.03, 0.06]


def test_figure8_routing_vs_error(benchmark, convnet_baseline):
    workload, network, accuracy, setup = convnet_baseline
    sweep = run_once(
        benchmark,
        sweep_group_deletion,
        workload,
        STRENGTHS,
        include_small_matrices=True,
        setup=setup,
        baseline_network=network,
    )
    print()
    print(sweep.format_table())

    mean_wires = [np.mean(list(p.wire_fractions.values())) for p in sweep.points]
    assert mean_wires[-1] <= mean_wires[0] + 1e-9, mean_wires
    assert mean_wires[-1] < 1.0, "the strongest lambda deleted nothing"

    for point in sweep.points:
        for name, wire in point.wire_fractions.items():
            assert point.routing_area_fractions[name] == wire**2
    # Accuracy should not collapse to chance anywhere in the sweep.
    assert max(p.error for p in sweep.points) < 0.6
