"""Figure 6: remaining ranks of LeNet's conv layers versus tolerable error ε.

Paper reference: as ε grows from 0 to 0.2 the remaining ranks of conv1 /
conv2 fall from their original 20 / 50 towards 4 / 6 while accuracy stays
above ~99 % (dropping only slightly at the largest tolerances).

Shape to verify: ranks are non-increasing in ε for every clipped layer and
the accuracy degradation over the sweep is modest.
"""

from bench_utils import run_once
from repro.experiments import sweep_rank_clipping

TOLERANCES = [0.01, 0.05, 0.15, 0.25]


def test_figure6_ranks_vs_tolerance(benchmark, lenet_baseline):
    workload, network, accuracy, setup = lenet_baseline
    sweep = run_once(
        benchmark,
        sweep_rank_clipping,
        workload,
        TOLERANCES,
        setup=setup,
        baseline_network=network,
        baseline_accuracy=accuracy,
    )
    print()
    print(sweep.format_table())

    # Each ε point is an independent training run, so ranks can jitter by a
    # unit between neighbouring points; the end-to-end trend must still be
    # downward for every layer and strictly downward for at least one.
    first, last = sweep.points[0], sweep.points[-1]
    for layer in workload.clippable_layers:
        assert last.ranks[layer] <= first.ranks[layer], (
            f"ranks of {layer} should not grow with epsilon: "
            f"{sweep.ranks_series(layer)}"
        )
    assert any(last.ranks[n] < first.ranks[n] for n in first.ranks)
    # Gentle tolerances retain accuracy (the paper's ε ≤ 0.05 regime).
    gentle = [p.accuracy for p in sweep.points if p.tolerance <= 0.05]
    assert min(gentle) >= sweep.baseline_accuracy - 0.10
