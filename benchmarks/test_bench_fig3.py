"""Figure 3: rank ratio of each layer and accuracy during rank clipping (LeNet).

Paper reference: with ε = 0.03 and S = 500 iterations, the rank ratios of
conv1 / conv2 / fc1 drop quickly in the first few thousand iterations and
converge to 0.25 / 0.24 / 0.07 while the accuracy stays within small
fluctuations of the baseline.

Shape to verify on the scaled-down workload: rank ratios start at 1.0, are
non-increasing, end well below 1.0, and accuracy at the end of clipping is
close to the accuracy at the start.
"""

from bench_utils import run_once
from repro.experiments import run_figure3


def test_figure3_rank_ratio_trace(benchmark, lenet_baseline):
    workload, network, accuracy, setup = lenet_baseline
    series = run_once(
        benchmark,
        run_figure3,
        workload,
        setup=setup,
        baseline_network=network,
        baseline_accuracy=accuracy,
    )
    print()
    print(series.format_series())

    for name, ratios in series.rank_ratio.items():
        assert ratios[0] == 1.0, f"{name} should start at full rank"
        assert all(b <= a + 1e-12 for a, b in zip(ratios, ratios[1:])), name
    final = series.final_rank_ratios()
    assert any(value < 0.9 for value in final.values()), "no rank was clipped"

    accuracies = [a for a in series.accuracy if a is not None]
    assert accuracies[-1] >= accuracies[0] - 0.05, "accuracy was not retained"
