"""Ablation: SVD versus PCA as the low-rank backend of rank clipping.

Paper reference: "Instead of PCA, when SVD is applied, the whole crossbar
area can also be reduced to 32.97 % (55.64 %) for LeNet (ConvNet), which
indicates SVD is inferior to PCA."

Two checks:

1. Closed form — with the paper's PCA ranks the crossbar area is 13.62 % /
   51.81 %, i.e. better (smaller) than the SVD numbers quoted above.
2. Measured — running rank clipping with the SVD backend on the scaled-down
   LeNet workload still reduces crossbar area while retaining accuracy
   (the two backends coincide on uncentered data, so at this scale they give
   similar ranks; the benchmark verifies the SVD path is functional).
"""

from bench_utils import run_once
from repro.experiments import PAPER_HEADLINE, run_table1
from repro.hardware import network_area_fraction


def test_svd_ablation(benchmark, lenet_baseline):
    workload, network, accuracy, setup = lenet_baseline
    result = run_once(
        benchmark,
        run_table1,
        workload,
        setup=setup,
        baseline_network=network,
        baseline_accuracy=accuracy,
        method="svd",
    )
    print()
    print(result.format_table())

    # Closed-form comparison against the paper's quoted SVD numbers.
    assert (
        PAPER_HEADLINE["lenet_crossbar_area_percent"]
        < PAPER_HEADLINE["lenet_svd_crossbar_area_percent"]
    )
    assert (
        PAPER_HEADLINE["convnet_crossbar_area_percent"]
        < PAPER_HEADLINE["convnet_svd_crossbar_area_percent"]
    )

    # Measured: the SVD-clipped network still saves area without losing accuracy.
    clipped = result.row("Rank clipping")
    area = network_area_fraction(
        workload.layer_shapes,
        {name: clipped.ranks.get(name) for name in workload.layer_shapes},
    )
    print(f"SVD-clipped crossbar area: {area:.2%}")
    assert area < 1.0
    assert clipped.accuracy >= result.row("Original").accuracy - 0.05
