"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The trained
dense baselines (LeNet on synthetic MNIST, ConvNet on synthetic CIFAR-10) are
expensive relative to a single benchmark, so they are session-scoped and
shared by all benchmark files.

All benchmarks run at the ``SMALL`` experiment scale by default; set the
environment variable ``REPRO_BENCH_SCALE=tiny`` for a quicker smoke run or
``REPRO_BENCH_SCALE=paper`` for the full-scale (hours-long) configuration.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments import (  # noqa: E402
    convnet_workload,
    get_scale,
    lenet_workload,
    train_baseline,
)

BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")


@pytest.fixture(scope="session")
def scale():
    """The experiment scale used by the benchmark harness."""
    return get_scale(BENCH_SCALE)


@pytest.fixture(scope="session")
def lenet_baseline(scale):
    """(workload, trained dense network, baseline accuracy, training setup)."""
    workload = lenet_workload(scale)
    network, accuracy, setup = train_baseline(workload)
    return workload, network, accuracy, setup


@pytest.fixture(scope="session")
def convnet_baseline(scale):
    """(workload, trained dense network, baseline accuracy, training setup)."""
    workload = convnet_workload(scale)
    network, accuracy, setup = train_baseline(workload)
    return workload, network, accuracy, setup
