"""Crossbar-simulator throughput benchmark: batched/vectorized vs tile loop.

Measures hardware-fidelity inference of K compressed network variants under
a non-ideal device corner (6-bit writes, programming noise, faults, 8-bit
ADC).  The networks are programmed once, untimed — deployment reprograms
nothing between evaluations — and the same conductances then execute under
two paths:

* **reference** — one network at a time, each tile MVM a separate Python-loop
  step (``ProgrammedNetwork.predict(reference=True)``): the naive per-tile
  implementation a straightforward port of the execution model would use.
* **batched** — :func:`repro.hardware.sim.stacked_programmed_predict`: all K
  networks in one pass, the input-side prefix shared, every crossbar stage's
  tile MVMs folded into batched blocked matmuls with the per-conversion ADC
  vectorized across whole tile row-blocks.

The benchmark pins the regime the simulator is built for: the **large
fully-connected crossbar stages** that dominate the paper's designs (LeNet's
fc1 U/V factors are the Table 3 "big matrices"; its convolutions fit a
handful of crossbars).  A paper-width MLP pipeline of low-rank factor stages
is mapped onto a dense 8×8-crossbar library — thousands of tiles per
network — and evaluated on a test-set-sized batch, which is exactly the
shape of the experiment pipeline's hardware-eval stage.  Per-tile work there
is tiny, so the naive loop pays per-tile dispatch ~10⁴ times per network
while the blocked path runs a few dozen fat kernels.  (Convolution-heavy
mappings with huge patch counts are memory-bandwidth-bound in *any*
arrangement — both paths track DRAM speed there and the two land within
~1.3×; that regime is covered by the parity tests, not this guard.)

The acceptance bar is a ≥ 2× wall-clock speedup of the batched simulator
with per-network results numerically equivalent to the reference loop
(guarded by ``np.testing.assert_allclose`` at 1e-9).  Both paths are warmed
once and timed best-of-``REPEATS`` (the PR-1 lesson: first-touch faults and
allocator growth otherwise dominate sub-second measurements).  Numbers land
in ``benchmark.extra_info`` and in ``BENCH_hardware.json`` via
``benchmarks/run_benchmarks.py --suite hardware``.
"""

from __future__ import annotations

import time

import numpy as np

from bench_utils import run_once
from repro.core.conversion import convert_to_lowrank
from repro.hardware.library import CrossbarLibrary
from repro.hardware.mapper import NetworkMapper
from repro.hardware.sim import (
    HardwareConfig,
    program_network,
    stacked_programmed_predict,
)
from repro.hardware.technology import TechnologyParameters
from repro.models import build_mlp

NUM_NETWORKS = 4
SAMPLES = 96
REPEATS = 3
CONFIG = HardwareConfig(
    bits=6, program_noise=0.02, fault_rate=0.001, adc_bits=8, seed=0
)
INPUT_DIM = 784
HIDDEN = [500, 300]
CLASSES = 10


def _mapper() -> NetworkMapper:
    technology = TechnologyParameters(max_crossbar_rows=8, max_crossbar_cols=8)
    return NetworkMapper(technology=technology, library=CrossbarLibrary(technology=technology))


def collect_hardware_stats():
    """Simulator timings/speedups as a flat dict (shared with run_benchmarks)."""
    # Paper-width fully-connected stages (784-500-300-10), full-rank
    # factorized as the Scissor pipeline deploys them; weights are untrained —
    # this benchmark times execution, not learning.
    networks = [
        convert_to_lowrank(
            build_mlp(INPUT_DIM, HIDDEN, CLASSES, rng=seed),
            layers=[f"fc{i + 1}" for i in range(len(HIDDEN))],
        )
        for seed in range(NUM_NETWORKS)
    ]
    inputs = np.random.default_rng(0).standard_normal((SAMPLES, INPUT_DIM))
    mapper = _mapper()

    # Programming happens once per deployment — outside the timed region,
    # exactly as the pipeline's hardware-eval stage reuses programmed arrays
    # across repeated predict calls.  Both timed paths read the same
    # conductances, so the comparison isolates the execution model.
    t0 = time.perf_counter()
    programmed = [program_network(network, CONFIG, mapper=mapper) for network in networks]
    program_s = time.perf_counter() - t0
    tiles = programmed[0].total_crossbars()

    def run_reference():
        return [pn.predict(inputs, reference=True) for pn in programmed]

    def run_serial_vectorized():
        return [pn.predict(inputs) for pn in programmed]

    def run_batched():
        return stacked_programmed_predict(programmed, inputs)

    # Warm every path once, then interleave best-of-REPEATS measurements.
    reference_logits = run_reference()
    run_serial_vectorized()
    batched_logits = run_batched()
    reference_times, serial_times, batched_times = [], [], []
    for _ in range(REPEATS):
        start = time.perf_counter()
        reference_logits = run_reference()
        reference_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        run_serial_vectorized()
        serial_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        batched_logits = run_batched()
        batched_times.append(time.perf_counter() - start)

    # Correctness gate: the batched simulator must agree with the per-tile
    # reference loop on every network's logits.
    for slot, logits in enumerate(reference_logits):
        np.testing.assert_allclose(batched_logits[slot], logits, rtol=1e-9, atol=1e-9)

    reference_s = min(reference_times)
    serial_s = min(serial_times)
    batched_s = min(batched_times)
    return {
        "networks": NUM_NETWORKS,
        "samples": SAMPLES,
        "crossbars_per_network": tiles,
        "program_s": program_s,
        "reference_s": reference_s,
        "serial_vectorized_s": serial_s,
        "batched_s": batched_s,
        "serial_speedup": reference_s / serial_s,
        "batched_speedup": reference_s / batched_s,
    }


def _check_shape(stats):
    # The satellite acceptance bar: the batched simulator must beat the naive
    # per-tile loop reference by at least 2x wall-clock.
    assert stats["batched_speedup"] >= 2.0, stats


def test_hardware_sim_throughput(benchmark):
    stats = run_once(benchmark, collect_hardware_stats)
    _check_shape(stats)
    benchmark.extra_info.update(
        {k: round(v, 4) if isinstance(v, float) else v for k, v in stats.items()}
    )
