#!/usr/bin/env python
"""Standalone kernel-benchmark runner emitting a ``BENCH_kernels.json`` trajectory.

Runs the vectorized-vs-reference kernel measurements from
``test_bench_kernels.py`` outside pytest and appends one record per run to a
JSON trajectory file, so kernel performance can be tracked across commits:

    python benchmarks/run_benchmarks.py                 # appends to ./BENCH_kernels.json
    python benchmarks/run_benchmarks.py --output /tmp/bench.json
    python benchmarks/run_benchmarks.py --check         # non-zero exit below 2x

Each record carries the per-kernel reference/vectorized timings (ms), the
speedups, and the ``map_network`` throughput numbers.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from bench_utils import _SRC  # noqa: F401,E402  (puts src/ on sys.path)

from test_bench_kernels import collect_kernel_stats, map_network_stats  # noqa: E402


def run(output: Path, check: bool) -> int:
    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    record.update({k: round(v, 4) if isinstance(v, float) else v
                   for k, v in collect_kernel_stats().items()})
    record.update({k: round(v, 4) for k, v in map_network_stats().items()})

    trajectory = []
    if output.exists():
        try:
            trajectory = json.loads(output.read_text())
        except json.JSONDecodeError:
            print(f"warning: {output} held invalid JSON; starting a fresh trajectory")
        if not isinstance(trajectory, list):
            trajectory = [trajectory]
    trajectory.append(record)
    output.write_text(json.dumps(trajectory, indent=2) + "\n")

    print(f"kernel benchmark ({record['timestamp']}) -> {output}")
    for key in ("conv_speedup", "maxpool_speedup", "avgpool_speedup", "total_speedup"):
        print(f"  {key:<18} {record[key]:.2f}x")
    print(f"  map_network warm   {record['map_network_warm_ms']:.3f} ms "
          f"({record['maps_per_second_warm']:.0f} maps/s)")

    if check and record["total_speedup"] < 2.0:
        print("FAIL: combined conv+pool speedup fell below 2x", file=sys.stderr)
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parents[1] / "BENCH_kernels.json",
        help="trajectory file to append to (default: repo-root BENCH_kernels.json)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when the combined speedup drops below 2x",
    )
    args = parser.parse_args()
    return run(args.output, args.check)


if __name__ == "__main__":
    raise SystemExit(main())
