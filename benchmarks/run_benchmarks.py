#!/usr/bin/env python
"""Standalone benchmark runner emitting JSON trajectory files.

Runs the engine benchmarks outside pytest and appends one record per run to a
JSON trajectory file per suite, so performance can be tracked across commits:

    python benchmarks/run_benchmarks.py                   # every registered suite
    python benchmarks/run_benchmarks.py --suite kernels   # one suite
    python benchmarks/run_benchmarks.py --list            # suite names, one per line
    python benchmarks/run_benchmarks.py --check           # non-zero exit on regression

The ``SUITES`` registry below is the single source of truth for suite names:
``--suite`` choices, the CI loop in ``ci/run_ci.sh`` (which iterates
``--list`` output), and ``python -m repro bench`` all read it, so the three
can never drift.

The kernel records carry the per-kernel reference/vectorized timings (ms),
the speedups, and the ``map_network`` throughput numbers.  The sweep records
carry the reference / serial-engine / parallel-engine wall-clock of a
multi-point λ sweep plus the batched-evaluation timings.  The lockstep
records carry the serial-per-point vs lockstep-stacked training wall-clock of
the λ sweep's point phase and the end-to-end sweep.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent))
from bench_utils import _SRC  # noqa: F401,E402  (puts src/ on sys.path)

_REPO_ROOT = Path(__file__).resolve().parents[1]


def _base_record() -> dict:
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }


def _append(output: Path, record: dict) -> None:
    trajectory = []
    if output.exists():
        try:
            trajectory = json.loads(output.read_text())
        except json.JSONDecodeError:
            print(f"warning: {output} held invalid JSON; starting a fresh trajectory")
        if not isinstance(trajectory, list):
            trajectory = [trajectory]
    trajectory.append(record)
    output.write_text(json.dumps(trajectory, indent=2) + "\n")


def run_kernels(output: Path, check: bool) -> int:
    from test_bench_kernels import collect_kernel_stats, map_network_stats

    record = _base_record()
    record.update({k: round(v, 4) if isinstance(v, float) else v
                   for k, v in collect_kernel_stats().items()})
    record.update({k: round(v, 4) for k, v in map_network_stats().items()})
    _append(output, record)

    print(f"kernel benchmark ({record['timestamp']}) -> {output}")
    for key in ("conv_speedup", "maxpool_speedup", "avgpool_speedup", "total_speedup"):
        print(f"  {key:<22} {record[key]:.2f}x")
    print(f"  map_network warm       {record['map_network_warm_ms']:.3f} ms "
          f"({record['maps_per_second_warm']:.0f} maps/s)")

    # Warm-allocator-regime threshold (see test_bench_kernels.py): the
    # steady-state combined speedup band is 1.6-1.8x.
    if check and record["total_speedup"] < 1.4:
        print("FAIL: combined conv+pool speedup fell below 1.4x", file=sys.stderr)
        return 1
    return 0


def run_sweeps(output: Path, check: bool) -> int:
    from test_bench_sweeps import collect_sweep_stats

    record = _base_record()
    record.update({k: round(v, 4) if isinstance(v, float) else v
                   for k, v in collect_sweep_stats().items()})
    _append(output, record)

    print(f"sweep benchmark ({record['timestamp']}) -> {output}")
    print(f"  reference              {record['reference_s']:.2f} s "
          f"({record['points']} lambda points)")
    print(f"  serial engine          {record['serial_engine_s']:.2f} s "
          f"({record['serial_speedup']:.2f}x)")
    print(f"  parallel engine (2w)   {record['parallel_engine_s']:.2f} s "
          f"({record['parallel_speedup']:.2f}x)")
    print(f"  batched evaluation     {record['eval_batched_ms']:.1f} ms vs "
          f"{record['eval_individual_ms']:.1f} ms "
          f"({record['eval_batched_speedup']:.2f}x)")

    if check and record["parallel_speedup"] < 2.0:
        print("FAIL: parallel sweep speedup fell below 2x", file=sys.stderr)
        return 1
    return 0


def run_lockstep(output: Path, check: bool) -> int:
    from test_bench_lockstep import collect_lockstep_stats

    record = _base_record()
    record.update({k: round(v, 4) if isinstance(v, float) else v
                   for k, v in collect_lockstep_stats().items()})
    _append(output, record)

    print(f"lockstep benchmark ({record['timestamp']}) -> {output}")
    print(f"  serial points          {record['serial_points_s']:.2f} s "
          f"({record['points']} lambda points)")
    print(f"  lockstep points        {record['lockstep_points_s']:.2f} s "
          f"({record['lockstep_speedup']:.2f}x)")
    print(f"  sweep end-to-end       {record['sweep_serial_s']:.2f} s -> "
          f"{record['sweep_lockstep_s']:.2f} s ({record['sweep_speedup']:.2f}x)")

    if check and record["lockstep_speedup"] < 2.0:
        print("FAIL: lockstep training speedup fell below 2x", file=sys.stderr)
        return 1
    return 0


def run_hardware(output: Path, check: bool) -> int:
    from test_bench_hardware import collect_hardware_stats

    record = _base_record()
    record.update({k: round(v, 4) if isinstance(v, float) else v
                   for k, v in collect_hardware_stats().items()})
    _append(output, record)

    print(f"hardware benchmark ({record['timestamp']}) -> {output}")
    print(f"  programming            {record['program_s']:.2f} s "
          f"({record['networks']} networks x {record['crossbars_per_network']} crossbars)")
    print(f"  per-tile reference     {record['reference_s']:.2f} s")
    print(f"  serial vectorized      {record['serial_vectorized_s']:.2f} s "
          f"({record['serial_speedup']:.2f}x)")
    print(f"  batched simulator      {record['batched_s']:.2f} s "
          f"({record['batched_speedup']:.2f}x)")

    if check and record["batched_speedup"] < 2.0:
        print("FAIL: batched crossbar-simulator speedup fell below 2x", file=sys.stderr)
        return 1
    return 0


def run_serving(output: Path, check: bool) -> int:
    from repro.serving.bench import (
        check_serving_stats,
        collect_obs_overhead,
        collect_serving_stats,
    )

    stats = collect_serving_stats()
    overhead = collect_obs_overhead()
    record = _base_record()
    record["capacity_rps"] = round(stats["capacity_rps"], 1)
    record["requests_per_level"] = stats["requests_per_level"]
    # Levels stay nested: per-level dicts (throughput, latency percentiles,
    # typed rejection counts) are the record, not incidental detail.
    record["levels"] = {
        name: {k: round(v, 4) if isinstance(v, float) else v
               for k, v in level.items()}
        for name, level in stats["levels"].items()
    }
    record["obs_overhead"] = {
        "requests": overhead["requests"],
        "disabled_rps": round(overhead["disabled_rps"], 1),
        "enabled_rps": round(overhead["enabled_rps"], 1),
        "overhead_ratio": round(overhead["overhead_ratio"], 4),
    }
    _append(output, record)

    print(f"serving benchmark ({record['timestamp']}) -> {output}")
    print(f"  sustained capacity     {record['capacity_rps']:.0f} requests/s")
    for name, level in record["levels"].items():
        shed = sum(level["rejections"].values())
        print(f"  {name:<5} load          served {level['throughput']:.0f}/s  "
              f"p99 {level['p99_ms']:.2f} ms  shed {shed}/{level['requests']}")
    obs = record["obs_overhead"]
    print(f"  metrics overhead       {obs['enabled_rps']:.0f}/s enabled vs "
          f"{obs['disabled_rps']:.0f}/s no-op (ratio {obs['overhead_ratio']:.3f})")

    if check:
        try:
            check_serving_stats(stats)
        except AssertionError as error:
            print(f"FAIL: shed-don't-collapse guard: {error}", file=sys.stderr)
            return 1
        if overhead["overhead_ratio"] < 0.9:
            print(
                "FAIL: metrics-enabled serving throughput "
                f"{overhead['enabled_rps']:.0f}/s fell below 90% of the no-op "
                f"baseline {overhead['disabled_rps']:.0f}/s "
                f"(ratio {overhead['overhead_ratio']:.3f})",
                file=sys.stderr,
            )
            return 1
    return 0


@dataclass(frozen=True)
class BenchmarkSuite:
    """One registered benchmark suite: runner, trajectory file, description."""

    name: str
    runner: Callable[[Path, bool], int]
    output: str
    description: str


#: Single source of truth for suite names — consumed by ``--suite``/``--list``,
#: the CI loop in ``ci/run_ci.sh``, and ``python -m repro bench``.
SUITES: "OrderedDict[str, BenchmarkSuite]" = OrderedDict(
    (suite.name, suite)
    for suite in (
        BenchmarkSuite(
            "kernels",
            run_kernels,
            "BENCH_kernels.json",
            "conv/pool kernel and map_network micro-benchmarks",
        ),
        BenchmarkSuite(
            "sweeps",
            run_sweeps,
            "BENCH_sweeps.json",
            "reference vs serial vs parallel lambda-sweep wall-clock",
        ),
        BenchmarkSuite(
            "lockstep",
            run_lockstep,
            "BENCH_lockstep.json",
            "serial-per-point vs lockstep stacked training wall-clock",
        ),
        BenchmarkSuite(
            "hardware",
            run_hardware,
            "BENCH_hardware.json",
            "batched crossbar-simulator inference vs naive per-tile loop",
        ),
        BenchmarkSuite(
            "serving",
            run_serving,
            "BENCH_serving.json",
            "serving-runtime load levels: shed under overload, don't collapse",
        ),
    )
)


def suite_names() -> Tuple[str, ...]:
    """Registered suite names, in registration order."""
    return tuple(SUITES)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--suite",
        choices=suite_names() + ("all",),
        default="all",
        help="which benchmark suite(s) to run (default: all)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print the registered suite names (one per line) and exit",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="trajectory file to append to (only valid with a single suite; "
        "defaults to repo-root BENCH_<suite>.json)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when a suite regresses below its threshold",
    )
    args = parser.parse_args(argv)
    if args.list:
        for name in suite_names():
            print(name)
        return 0
    names = suite_names() if args.suite == "all" else (args.suite,)
    if args.output is not None and len(names) > 1:
        parser.error("--output requires a single --suite")

    status = 0
    for name in names:
        suite = SUITES[name]
        output = args.output or _REPO_ROOT / suite.output
        status = max(status, suite.runner(output, args.check))
    return status


if __name__ == "__main__":
    raise SystemExit(main())
