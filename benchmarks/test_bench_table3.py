"""Table 3: MBC sizes and remaining routing wires in big layers.

Paper reference (full scale): after group connection deletion without
accuracy loss, the remaining routing wires per big matrix are

* LeNet:   conv2_u 47.5 %, fc1_u 24.8 %, fc1_v 6.7 %, fc_last 18.0 %
  (layer-wise average routing area 8.1 %)
* ConvNet: conv1_u 83.3 %, conv2_u 40.5 %, conv3_u 74.4 %, fc_last 81.9 %
  (mean wires 70.03 %, layer-wise routing area 52.06 %)

The benchmark regenerates the same rows on the scaled-down synthetic
workloads.  Shape to verify: a substantial fraction of wires is deleted,
routing area shrinks quadratically with the wire fraction, and accuracy stays
close to the baseline after fine-tuning.
"""

from bench_utils import run_once
from repro.experiments import run_table3

#: Group-Lasso strengths tuned for the short SMALL-scale runs: strong enough
#: to drive groups to zero within a few hundred iterations, weak enough for
#: fine-tuning to recover accuracy.
LENET_STRENGTH = 0.04
CONVNET_STRENGTH = 0.04


def _check_shape(result):
    assert result.rows, "no big matrices were selected for deletion"
    # Some routing wires are deleted overall.
    assert result.mean_wire_fraction() < 1.0
    # Routing area is the square of the wire fraction, so it shrinks faster.
    assert result.mean_routing_area_fraction() <= result.mean_wire_fraction() + 1e-12
    # Accuracy stays within a few points of the baseline after fine-tuning.
    assert result.final_accuracy >= result.baseline_accuracy - 0.08


def test_table3_lenet(benchmark, lenet_baseline):
    workload, network, accuracy, setup = lenet_baseline
    result = run_once(
        benchmark,
        run_table3,
        workload,
        strength=LENET_STRENGTH,
        include_small_matrices=True,
        setup=setup,
        baseline_network=network,
        baseline_accuracy=accuracy,
    )
    print()
    print(result.format_table())
    _check_shape(result)


def test_table3_convnet(benchmark, convnet_baseline):
    workload, network, accuracy, setup = convnet_baseline
    result = run_once(
        benchmark,
        run_table3,
        workload,
        strength=CONVNET_STRENGTH,
        include_small_matrices=True,
        setup=setup,
        baseline_network=network,
        baseline_accuracy=accuracy,
    )
    print()
    print(result.format_table())
    _check_shape(result)
