"""Figure 7: remaining MBC (crossbar) area versus classification error.

Paper reference: sweeping the tolerable clipping error, the per-layer and
total crossbar areas of (a) LeNet and (b) ConvNet drop rapidly while the
classification error grows only slightly; LeNet's total area reaches 13.62 %
with no accuracy loss and 3.78 % at 1 % loss, ConvNet's 51.81 % / 38.14 %.

Shape to verify: total crossbar area is non-increasing along the ε sweep, the
largest-ε point is substantially below 100 %, and the error increase across
the sweep stays small.
"""

from bench_utils import run_once
from repro.experiments import sweep_rank_clipping

TOLERANCES = [0.02, 0.08, 0.20]


def _check_shape(sweep):
    areas = sweep.area_series()
    assert all(b <= a + 1e-9 for a, b in zip(areas, areas[1:])), areas
    assert areas[-1] < 0.95, "rank clipping saved almost no crossbar area"
    errors = sweep.error_series()
    # The gentlest tolerance must sit at (or very near) the best accuracy of
    # the sweep — the "no accuracy loss" end of the paper's curves — and even
    # the most aggressive point must stay far away from a collapsed model.
    assert errors[0] <= min(errors) + 0.05
    assert max(errors) < 0.5, "accuracy collapsed at the aggressive end of the sweep"


def test_figure7a_lenet_area_vs_error(benchmark, lenet_baseline):
    workload, network, accuracy, setup = lenet_baseline
    sweep = run_once(
        benchmark,
        sweep_rank_clipping,
        workload,
        TOLERANCES,
        setup=setup,
        baseline_network=network,
        baseline_accuracy=accuracy,
    )
    print()
    print(sweep.format_table())
    _check_shape(sweep)


def test_figure7b_convnet_area_vs_error(benchmark, convnet_baseline):
    workload, network, accuracy, setup = convnet_baseline
    sweep = run_once(
        benchmark,
        sweep_rank_clipping,
        workload,
        TOLERANCES,
        setup=setup,
        baseline_network=network,
        baseline_accuracy=accuracy,
    )
    print()
    print(sweep.format_table())
    _check_shape(sweep)
