"""Lockstep-training throughput benchmark: stacked λ-point training vs serial.

Measures the 6-point λ group-deletion sweep behind Figure 8 under the two
execution policies of the default engine:

* ``points`` — the serial per-point engine path (one network trains at a
  time; the PR-2 baseline).
* ``lockstep`` — ``SweepEngine(mode="lockstep")``: all six λ-points train as
  one stacked program (im2col shared across points, one ``(K, out, in)``
  batched matmul per weighted layer, stacked-state SGD, per-point-λ group
  Lasso, and the first weighted layer's input gradient — which no parameter
  consumes — skipped entirely).

The acceptance bar is a ≥ 2× wall-clock speedup of the lockstep λ-point
training phase over the serial per-point path with **bit-identical** final
accuracies and group norms; the end-to-end sweep (which adds the shared
rank-clipping preamble and the batched final evaluation, identical under both
policies) is reported alongside with a softer bar.  Numbers land in
``benchmark.extra_info`` and in ``BENCH_lockstep.json`` via
``benchmarks/run_benchmarks.py --suite lockstep``.

The benchmark pins the regime the lockstep mode is built for (see the
quickstart: 1-core boxes, identical-shape λ grids): the LeNet workload at the
``tiny`` preset with small (8-sample) mini-batches, where per-point
iterations are far too small to saturate the core and the sweep's wall-clock
is dominated by per-iteration kernel and dispatch overhead the stack
amortizes across K points.  Records run at the ``small`` preset's cadence
(every 40 iterations), and both policies are warmed once and timed
best-of-``REPEATS`` (the PR-1 lesson: first-touch page faults and allocator
growth otherwise dominate sub-second measurements).
"""

from __future__ import annotations

import copy
import time

import numpy as np

from bench_utils import run_once
from repro.core import GroupDeletionConfig, RankClippingConfig, RankClipper
from repro.core.conversion import convert_to_lowrank
from repro.core.groups import derive_network_groups, matrix_group_norms
from repro.experiments import (
    SweepEngine,
    get_scale,
    lenet_workload,
    sweep_group_deletion,
    train_baseline,
)
from repro.experiments.runner import StrengthPointTask

STRENGTHS = [0.005, 0.01, 0.02, 0.04, 0.06, 0.08]
BENCH_SCALE = get_scale("tiny").with_overrides(batch_size=8, record_interval=40)
REPEATS = 3


def _network_group_norms(network):
    norms = {}
    for matrix in derive_network_groups(network, include_small_matrices=True):
        row_norms, col_norms = matrix_group_norms(matrix.values(), matrix.plan)
        norms[matrix.name] = np.concatenate([row_norms.ravel(), col_norms.ravel()])
    return norms


def collect_lockstep_stats():
    """Lockstep-vs-serial timings/speedups as a flat dict (shared with run_benchmarks)."""
    workload = lenet_workload(BENCH_SCALE)
    network, baseline_accuracy, setup = train_baseline(workload)
    scale = workload.scale
    layer_order = list(workload.clippable_layers)

    # Shared preamble (identical under both policies): one rank-clipped
    # starting network for every λ point.
    serial_engine = SweepEngine()
    lockstep_engine = SweepEngine(mode="lockstep")
    clipped = convert_to_lowrank(copy.deepcopy(network), layers=layer_order)
    clip_config = RankClippingConfig(
        tolerance=0.03,
        clip_interval=scale.clip_interval,
        max_iterations=scale.clip_iterations,
        layers=tuple(layer_order),
    )
    RankClipper(clip_config).run(
        clipped, serial_engine.shared_setup(setup).trainer_factory
    )

    def make_tasks(engine):
        return [
            StrengthPointTask(
                index=index,
                strength=float(strength),
                network=copy.deepcopy(clipped),
                setup=engine.point_setup(setup, index),
                config=GroupDeletionConfig(
                    strength=float(strength),
                    iterations=scale.deletion_iterations,
                    finetune_iterations=scale.finetune_iterations,
                    include_small_matrices=True,
                ),
                record_interval=scale.record_interval,
            )
            for index, strength in enumerate(STRENGTHS)
        ]

    # λ-point training phase, interleaved best-of-REPEATS per policy (the
    # deep copies in make_tasks are excluded from the timed region; both
    # policies would pay them identically).  One untimed warmup run per
    # policy keeps allocator growth and first-touch faults out of the band.
    serial_engine.run_strength_points(make_tasks(serial_engine))
    lockstep_engine.run_strength_points(make_tasks(lockstep_engine))
    serial_times, lockstep_times = [], []
    serial_outcomes = lockstep_outcomes = None
    for _ in range(REPEATS):
        tasks = make_tasks(serial_engine)
        start = time.perf_counter()
        serial_outcomes = serial_engine.run_strength_points(tasks)
        serial_times.append(time.perf_counter() - start)
        tasks = make_tasks(lockstep_engine)
        start = time.perf_counter()
        lockstep_outcomes = lockstep_engine.run_strength_points(tasks)
        lockstep_times.append(time.perf_counter() - start)

    # Correctness gates: the lockstep stack must not change a single bit of
    # any point's result — wire counts, routing areas, held-out accuracies
    # and every group norm of the finished networks.
    for serial_point, lockstep_point in zip(serial_outcomes, lockstep_outcomes):
        assert serial_point.wire_fractions == lockstep_point.wire_fractions
        assert (
            serial_point.routing_area_fractions
            == lockstep_point.routing_area_fractions
        )
    serial_accuracies = serial_engine.evaluate_networks(
        [outcome.network for outcome in serial_outcomes], setup
    )
    lockstep_accuracies = lockstep_engine.evaluate_networks(
        [outcome.network for outcome in lockstep_outcomes], setup
    )
    assert serial_accuracies == lockstep_accuracies
    for serial_point, lockstep_point in zip(serial_outcomes, lockstep_outcomes):
        serial_norms = _network_group_norms(serial_point.network)
        lockstep_norms = _network_group_norms(lockstep_point.network)
        for name, values in serial_norms.items():
            np.testing.assert_array_equal(values, lockstep_norms[name])

    # End-to-end sweep (adds the shared clip preamble + batched evaluation).
    kwargs = dict(include_small_matrices=True, setup=setup, baseline_network=network)
    start = time.perf_counter()
    serial_sweep = sweep_group_deletion(
        workload, STRENGTHS, engine=serial_engine, **kwargs
    )
    sweep_serial_s = time.perf_counter() - start
    start = time.perf_counter()
    lockstep_sweep = sweep_group_deletion(
        workload, STRENGTHS, engine=lockstep_engine, **kwargs
    )
    sweep_lockstep_s = time.perf_counter() - start
    assert serial_sweep.points == lockstep_sweep.points

    serial_s = min(serial_times)
    lockstep_s = min(lockstep_times)
    return {
        "points": len(STRENGTHS),
        "serial_points_s": serial_s,
        "lockstep_points_s": lockstep_s,
        "lockstep_speedup": serial_s / lockstep_s,
        "sweep_serial_s": sweep_serial_s,
        "sweep_lockstep_s": sweep_lockstep_s,
        "sweep_speedup": sweep_serial_s / sweep_lockstep_s,
        "routing_cache_hits": lockstep_sweep.routing_cache_stats.get("hits", 0),
    }


def _check_shape(stats):
    # The tentpole acceptance bar: lockstep training of the 6-point λ grid
    # must beat the serial per-point engine path by at least 2x wall-clock.
    assert stats["lockstep_speedup"] >= 2.0, stats
    # End-to-end the sweep keeps most of that (the shared clip preamble and
    # the batched evaluation are identical under both policies).
    assert stats["sweep_speedup"] >= 1.4, stats


def test_lockstep_throughput(benchmark):
    stats = run_once(benchmark, collect_lockstep_stats)
    _check_shape(stats)
    benchmark.extra_info.update(
        {k: round(v, 4) if isinstance(v, float) else v for k, v in stats.items()}
    )
