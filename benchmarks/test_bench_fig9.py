"""Figure 9: structurally-sparse weight matrices after group connection deletion.

Paper reference: the deleted ConvNet's crossbar matrices show *structural*
(group-aligned) sparsity — whole crossbar columns/rows are empty, and some
crossbars have no connection at all and can be removed from the design.

The benchmark regenerates the per-matrix sparsity maps (per-crossbar density
grids + ASCII sketches) after running deletion on the rank-clipped ConvNet.
Shape to verify: matrices are sparser than dense, the sparsity is aligned
with whole row/column groups, and the per-crossbar density grid reflects it.
"""

import numpy as np

from bench_utils import run_once
from repro.experiments import run_table3, sparsity_maps

STRENGTH = 0.05


def _run(workload, setup, network, accuracy):
    result = run_table3(
        workload,
        strength=STRENGTH,
        include_small_matrices=True,
        setup=setup,
        baseline_network=network,
        baseline_accuracy=accuracy,
    )
    maps = sparsity_maps(result.deletion_result.network, include_small_matrices=True)
    return result, maps


def test_figure9_sparsity_maps(benchmark, convnet_baseline):
    workload, network, accuracy, setup = convnet_baseline
    result, maps = run_once(benchmark, _run, workload, setup, network, accuracy)

    print()
    assert maps
    structurally_sparse = 0
    for sparsity in maps:
        print(
            f"{sparsity.name}: nonzero {sparsity.nonzero_fraction:.1%}, "
            f"empty crossbars {sparsity.empty_crossbars}/{sparsity.crossbar_density.size}"
        )
        print(sparsity.ascii_sketch())
        assert 0.0 <= sparsity.nonzero_fraction <= 1.0
        assert np.all((sparsity.crossbar_density >= 0) & (sparsity.crossbar_density <= 1))
        if sparsity.nonzero_fraction < 1.0:
            structurally_sparse += 1
            # Sparsity must be group-aligned: at least one full row or column
            # of the matrix inside some tile is entirely zero.
            mask = sparsity.mask
            assert (~mask).any()
    assert structurally_sparse > 0, "deletion produced no sparsity at all"
