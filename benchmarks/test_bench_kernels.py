"""Kernel benchmark: vectorized execution engine vs the seed loop kernels.

Measures, on a ``32×3×32×32`` batch (the ConvNet's CIFAR geometry):

* the conv kernel pair — ``im2col`` forward + ``col2im`` backward at the
  ConvNet's ``5×5 / stride 1 / padding 2`` configuration,
* full max-pool and average-pool layer forward+backward at ``2×2 / stride 2``,
* ``NetworkMapper.map_network`` throughput with warm (memoized) tiling plans.

Each vectorized kernel is timed against the preserved loop implementation
(:mod:`repro.nn._reference`); ratios use best-of-``REPEATS`` timings, so
they are robust to background load.  Per-kernel numbers land in
``benchmark.extra_info`` and in ``BENCH_kernels.json`` via
``benchmarks/run_benchmarks.py``.

Measurements are pinned to the **warm-allocator regime**: the loop reference
allocates one more full-size intermediate per call than the vectorized path,
so on a fresh heap a large share of its measured time is page-fault cost —
flattering the speedup (~2.5×) and making the ratio depend on whatever
allocations earlier tests left behind.  ``warm_allocator()`` pre-extends the
heap with the benchmark's own footprint first, which makes the numbers
deterministic under any suite ordering and reports the steady-state compute
ratio (~1.6–1.8× combined) that long-running training actually sees.  The
regression guards are calibrated against that regime.
"""

from __future__ import annotations

import time

import numpy as np

from bench_utils import run_once
from repro.hardware.mapper import NetworkMapper
from repro.models.convnet import ConvNetConfig, build_convnet
from repro.nn import AvgPool2D, MaxPool2D
from repro.nn import _reference as ref
from repro.nn import functional as F

BATCH_SHAPE = (32, 3, 32, 32)
CONV_KERNEL = 5
CONV_STRIDE = 1
CONV_PADDING = 2
POOL = 2
POOL_STRIDE = 2
REPEATS = 5


def best_of(func, repeats: int = REPEATS) -> float:
    """Best-of-``repeats`` wall time of ``func()`` in seconds (after warmup)."""
    func()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        times.append(time.perf_counter() - start)
    return min(times)


def make_batch():
    rng = np.random.default_rng(1234)
    return rng.standard_normal(BATCH_SHAPE)


#: Live heap anchor installed by warm_allocator(); keeping it referenced
#: prevents the allocator from returning the warmed pages to the OS.
_HEAP_ANCHOR = []


def warm_allocator():
    """Pin the allocator to the warm (steady-state) regime before timing.

    Extends the heap with a live anchor plus churn matching the largest
    intermediates the kernels allocate (~20 MB each), so every timed
    allocation reuses warm pages regardless of what ran earlier in the
    process.
    """
    if not _HEAP_ANCHOR:
        _HEAP_ANCHOR.extend(np.ones(4 * 1024 * 1024 // 8) for _ in range(8))
    churn = [np.ones(24 * 1024 * 1024 // 8) for _ in range(3)]
    del churn


def conv_pair_timings(x):
    """(reference, vectorized) times for im2col forward + col2im backward."""
    cols, _, _ = F.im2col(x, CONV_KERNEL, CONV_KERNEL, CONV_STRIDE, CONV_PADDING)
    grad_cols = np.random.default_rng(0).standard_normal(cols.shape)

    t_ref = best_of(
        lambda: ref.im2col_loop(x, CONV_KERNEL, CONV_KERNEL, CONV_STRIDE, CONV_PADDING)
    ) + best_of(
        lambda: ref.col2im_loop(
            grad_cols, x.shape, CONV_KERNEL, CONV_KERNEL, CONV_STRIDE, CONV_PADDING
        )
    )
    t_new = best_of(
        lambda: F.im2col(x, CONV_KERNEL, CONV_KERNEL, CONV_STRIDE, CONV_PADDING)
    ) + best_of(
        lambda: F.col2im(
            grad_cols, x.shape, CONV_KERNEL, CONV_KERNEL, CONV_STRIDE, CONV_PADDING
        )
    )
    return t_ref, t_new


def pool_timings(x, layer_cls, ref_func):
    """(reference, vectorized) times for a full pooling forward + backward."""
    layer = layer_cls(POOL, POOL_STRIDE)
    out = layer.forward(x)
    grad_out = np.random.default_rng(0).standard_normal(out.shape)

    def run_new():
        layer.train()
        result = layer.forward(x)
        layer.backward(grad_out)
        return result

    t_ref = best_of(lambda: ref_func(x, POOL, POOL_STRIDE, 0, grad_out))
    t_new = best_of(run_new)
    return t_ref, t_new


def collect_kernel_stats():
    """All kernel timings/speedups as a flat dict (shared with run_benchmarks)."""
    warm_allocator()
    x = make_batch()
    conv_ref, conv_new = conv_pair_timings(x)
    max_ref, max_new = pool_timings(x, MaxPool2D, ref.maxpool_forward_backward_loop)
    avg_ref, avg_new = pool_timings(x, AvgPool2D, ref.avgpool_forward_backward_loop)
    total_ref = conv_ref + max_ref + avg_ref
    total_new = conv_new + max_new + avg_new
    return {
        "batch_shape": list(BATCH_SHAPE),
        "conv_ref_ms": 1e3 * conv_ref,
        "conv_new_ms": 1e3 * conv_new,
        "conv_speedup": conv_ref / conv_new,
        "maxpool_ref_ms": 1e3 * max_ref,
        "maxpool_new_ms": 1e3 * max_new,
        "maxpool_speedup": max_ref / max_new,
        "avgpool_ref_ms": 1e3 * avg_ref,
        "avgpool_new_ms": 1e3 * avg_new,
        "avgpool_speedup": avg_ref / avg_new,
        "total_speedup": total_ref / total_new,
    }


def _check_shape(stats):
    # Warm-allocator-regime guards: the combined conv+pool forward+backward
    # measures 1.6-1.8x steady-state (2.4-2.6x from a fresh heap, where the
    # reference's extra full-size intermediate also pays page faults); the
    # thresholds sit well below the observed band so machine noise cannot
    # flake the suite.
    assert stats["total_speedup"] >= 1.4, stats
    assert stats["conv_speedup"] >= 1.2, stats
    assert stats["maxpool_speedup"] >= 1.2, stats
    assert stats["avgpool_speedup"] >= 1.2, stats


def test_kernel_speedups(benchmark):
    stats = run_once(benchmark, collect_kernel_stats)
    _check_shape(stats)
    benchmark.extra_info.update({k: round(v, 3) if isinstance(v, float) else v
                                 for k, v in stats.items()})


def map_network_stats():
    """map_network throughput on the small-scale ConvNet, cold vs warm plans."""
    network = build_convnet(ConvNetConfig(), rng=0)
    mapper = NetworkMapper()
    t_cold = best_of(lambda: NetworkMapper().map_network(network), repeats=3)
    mapper.map_network(network)  # warm the plan cache
    t_warm = best_of(lambda: mapper.map_network(network), repeats=3)
    return {
        "map_network_cold_ms": 1e3 * t_cold,
        "map_network_warm_ms": 1e3 * t_warm,
        "maps_per_second_warm": 1.0 / t_warm,
    }


def test_map_network_throughput(benchmark):
    stats = run_once(benchmark, map_network_stats)
    assert stats["map_network_warm_ms"] <= stats["map_network_cold_ms"] * 1.5
    benchmark.extra_info.update({k: round(v, 3) for k, v in stats.items()})
